/**
 * @file
 * The eight SPECint95-shaped synthetic workloads: irregular control flow,
 * data-dependent trip counts, recursion (the §2.2 CLS recursion quirk),
 * interpreter dispatch loops and hash probing. Calibration targets per
 * builder; see docs/DESIGN.md §2.
 */

#include "workloads/workload.hh"

#include <functional>
#include <iterator>

#include "util/logging.hh"
#include "workloads/kernels.hh"

namespace loopspec
{

using namespace regs;
using namespace kernels;

namespace
{

constexpr int64_t spillBase = 1024;
constexpr int64_t heapBase = 8192;

void
prologue(ProgramBuilder &b, int64_t seed)
{
    b.beginFunction("main");
    b.li(spReg, spillBase);
    b.li(lcgReg, seed);
}

void
driverLoop(ProgramBuilder &b, uint64_t reps,
           const std::function<void()> &body)
{
    b.li(r9, 0);
    b.li(r19, static_cast<int64_t>(reps));
    b.countedLoop(r9, r19, [&](const LoopCtx &) { body(); });
}

/** Emit "if ((r9 & mask) == 0) { body }" using r13 as scratch. */
void
everyNth(ProgramBuilder &b, int64_t mask,
         const std::function<void()> &body)
{
    b.andi(r13, r9, mask);
    b.ifElse([&](Label else_l) { b.bne(r13, r0, else_l); },
             [&]() { body(); });
}

} // namespace

// compress: LZW coding. Targets: 45 loops, ~6 iter/exec, ~85 instr/iter,
// nesting 2.5/4; Table 2: hit ratio ~100% (everything that iterates is
// trip-predictable), TPC ~3.2, tiny spec-to-verify distance. The hot
// loop processes one input byte per iteration with an inline (loop-free)
// two-probe hash lookup; short constant-trip output loops fire
// periodically; a secondary-probe loop exists but usually runs 0..2
// data-dependent iterations.
Program
buildCompress(const WorkloadScale &scale)
{
    constexpr int64_t table = heapBase;        // 4096-slot hash table
    constexpr int64_t slots = 4096;
    constexpr int64_t outbuf = table + slots;  // 64-word output buffer
    ProgramBuilder b("compress", outbuf + 1024);

    prologue(b, 0xc033);

    driverLoop(b, scale.reps(48000), [&] {
        emitLcgStep(b, r20);            // next input "byte" + context
        b.ori(r20, r20, 1);
        b.andi(r21, r20, slots - 1);    // primary probe, inline (no loop)
        b.ld(r22, r21, table);
        b.ifElse([&](Label else_l) { b.bne(r22, r0, else_l); },
                 [&]() { b.st(r20, r21, table); }, // free: insert
                 [&]() {
                     // Occupied: one secondary displacement probe chain
                     // (short, data dependent).
                     b.xori(r21, r21, 0x55);
                     b.li(r23, 0);
                     b.li(r24, 3);
                     b.whileLoop(
                         [&](Label exit) {
                             b.ld(r22, r21, table);
                             b.beq(r22, r0, exit);
                             b.beq(r22, r20, exit);
                             b.bge(r23, r24, exit);
                         },
                         [&](const LoopCtx &) {
                             b.addi(r21, r21, 7);
                             b.andi(r21, r21, slots - 1);
                             b.addi(r23, r23, 1);
                         });
                     b.st(r20, r21, table);
                 });
        emitBigBlock(b, 100, r27, r28);
        // Code emission: flush the bit buffer every 64 bytes (constant
        // trip 8 with a meaty body: the STR predictor nails it).
        everyNth(b, 63, [&] {
            b.li(r1, 0);
            b.li(r2, 8);
            b.countedLoop(r1, r2, [&](const LoopCtx &) {
                b.ld(r20, r1, outbuf);
                b.addi(r20, r20, 3);
                b.st(r20, r1, outbuf);
                emitBigBlock(b, 16, r25, r26);
            });
        });
        // Dictionary rebuild: a rare 3-deep section (max nesting 4).
        everyNth(b, 4095, [&] {
            b.li(r15, 0);
            b.li(r16, 2);
            b.countedLoop(r15, r16, [&](const LoopCtx &) {
                b.li(r17, 0);
                b.li(r18, 2);
                b.countedLoop(r17, r18, [&](const LoopCtx &) {
                    b.li(r1, 0);
                    b.li(r2, 4);
                    b.countedLoop(r1, r2, [&](const LoopCtx &) {
                        emitBigBlock(b, 6, r25, r26);
                    });
                });
            });
        });
        // Table aging: every 256 bytes clear a rotating 256-slot window
        // (8 stores per iteration keeps the iteration count small while
        // holding the load factor — and thus probe-loop frequency —
        // low).
        everyNth(b, 127, [&] {
            b.andi(r14, r9, 3840); // window base, stays in-table
            b.li(r1, 0);
            b.li(r2, 32);
            b.countedLoop(r1, r2, [&](const LoopCtx &) {
                b.shli(r20, r1, 3);
                b.add(r20, r20, r14);
                for (int k = 0; k < 8; ++k)
                    b.st(r0, r20, table + k);
            });
        });
    });

    emitLoopFarm(b, 40, 3, 2);
    b.halt();
    return b.build();
}

// gcc: compiler passes over irregular IR. Targets: 1229 static loops
// (the suite's largest loop population — LET/LIT pressure), ~5.3
// iter/exec with data-dependent trips (hit ratio ~76%), ~80 instr/iter,
// nesting 3.4/7.
Program
buildGcc(const WorkloadScale &scale)
{
    constexpr int64_t words = 1 << 14;
    ProgramBuilder b("gcc", heapBase + words);

    // Pass bodies: emitted as separate functions, called per driver
    // iteration. Parameters vary per pass so each contributes distinct
    // loop shapes.
    struct Pass
    {
        unsigned flat_loops; //!< depth-1 loops over "insns"
        unsigned depth;      //!< one nested section of this depth
        unsigned alu;
    };
    static constexpr Pass passes[] = {
        {6, 2, 11}, {5, 3, 13}, {7, 2, 9}, {4, 2, 12}, {6, 2, 15},
        {5, 3, 10}, {8, 2, 8}, {4, 5, 11}, {6, 3, 13}, {5, 2, 14},
        {7, 2, 10}, {4, 4, 9}, {6, 2, 12}, {5, 2, 11}, {6, 3, 10},
        {5, 2, 13},
    };

    // main must be the first function (program entry).
    prologue(b, 0x6cc0);
    driverLoop(b, scale.reps(22), [&] {
        for (size_t p = 0; p < std::size(passes); ++p)
            b.call(strprintf("pass%zu", p));
    });
    emitLoopFarm(b, 1090, 2, 2);
    b.halt();

    for (size_t p = 0; p < std::size(passes); ++p) {
        b.beginFunction(strprintf("pass%zu", p));
        const Pass &ps = passes[p];
        for (unsigned l = 0; l < ps.flat_loops; ++l) {
            if (l % 3 < 2) { // constant-trip scan (predictable)
                emitVarNest(b, {{5 + (l % 3), 0, ps.alu, true}},
                            heapBase, words);
            } else { // data-dependent scan
                emitVarNest(b, {{4, 1, ps.alu, false}}, heapBase,
                            words);
            }
        }
        std::vector<VarNestLevel> nest;
        for (unsigned d = 0; d < ps.depth; ++d)
            nest.push_back({3, 1, ps.alu, d + 1 == ps.depth});
        emitVarNest(b, nest, heapBase, words);
        b.ret();
    }

    return b.build();
}

// go: game-tree search. Targets: 709 loops, ~3.8 iter/exec, ~157
// instr/iter, nesting up to 11 — realised with a 5-function mutual
// recursion cycle whose per-activation loops pile up distinct CLS
// entries (the §2.2 recursion scenario), plus board-scan loops at the
// leaves. Loop-poor instruction stream: TPC stays near 1 (Table 2).
Program
buildGo(const WorkloadScale &scale)
{
    constexpr int64_t words = 1 << 13;
    ProgramBuilder b("go", heapBase + words);

    prologue(b, 0x609a);
    driverLoop(b, scale.reps(260), [&] {
        b.li(r10, 7); // search depth
        b.call("search0");
        // Board scans between searches: constant-trip liberty scans
        // plus a couple of data-dependent pattern matchers.
        emitRegularNest(b, {{12, 24, true}}, heapBase, words);
        emitRegularNest(b, {{6, 30, true}}, heapBase, words);
        emitVarNest(b, {{10, 3, 24, true}}, heapBase, words);
        emitVarNest(b, {{4, 3, 30, true}}, heapBase, words);
    });
    emitLoopFarm(b, 690, 2, 2);
    b.halt();

    static constexpr int64_t trips[5] = {3, 4, 3, 4, 2};
    for (int f = 0; f < 5; ++f) {
        emitRecursiveTree(b, strprintf("search%d", f),
                          strprintf("search%d", (f + 1) % 5), trips[f],
                          10);
    }
    return b.build();
}

// li: lisp interpreter. Targets: 94 loops, ~3.5 iter/exec, ~108
// instr/iter, nesting to 10 (eval recursion), hit ratio ~69% (cons-list
// walks of data-dependent length), TPC ~1.75.
Program
buildLi(const WorkloadScale &scale)
{
    constexpr int64_t next = heapBase; // cons "cdr" array
    constexpr int64_t cells = 1 << 12;
    constexpr int64_t props = next + cells; // property/value scratch
    ProgramBuilder b("li", props + cells + 1024);

    prologue(b, 0x11bb);
    emitRingInit(b, next, cells, 6); // chains of 6 cells
    // The top level is a recursive REPL (one activation per input
    // expression), not a loop: like perl, the sequential backbone is
    // recursion, which caps the ideal machine's thread-level
    // parallelism at the per-expression level (Figure 5 places li and
    // perl far below the loop-driven codes).
    b.li(r10, static_cast<int64_t>(scale.reps(1900)));
    b.call("repl");
    emitLoopFarm(b, 70, 2, 2);
    b.halt();

    b.beginFunction("repl");
    Label repl_done = b.newLabel();
    b.beq(r10, r0, repl_done);
    // Walk a few lists from pseudo-random starting cells.
    for (int w = 0; w < 3; ++w) {
        emitLcgStep(b, r28);
        b.andi(r28, r28, cells - 1);
        // Aligned to a chain head: the walk length is always ring_len
        // (predictable, like hot property lists).
        b.li(r20, 6);
        b.div(r28, r28, r20);
        b.mul(r28, r28, r20);
        emitPointerChase(b, next, r28, 16, 8);
    }
    // eval/apply recursion with per-node loops.
    emitPush(b, r10);
    b.li(r10, 7);
    b.call("eval0");
    emitPop(b, r10);
    // Property-list scan (short, variable) over its own scratch area
    // (the cons chains must stay intact for the walks).
    emitVarNest(b, {{2, 1, 14, true}}, props, cells);
    b.addi(r10, r10, -1);
    b.call("repl");
    b.bind(repl_done);
    b.ret();

    static constexpr int64_t trips[4] = {2, 3, 2, 3};
    for (int f = 0; f < 4; ++f) {
        emitRecursiveTree(b, strprintf("eval%d", f),
                          strprintf("eval%d", (f + 1) % 4), trips[f], 10);
    }
    return b.build();
}

// m88ksim: CPU simulator. Targets: 127 loops, ~9.4 iter/exec, ~40
// instr/iter (the suite's smallest iterations), nesting 2.0/5, hit ratio
// ~97% (constant-trip handler loops), TPC ~2.8. One big
// fetch-decode-execute dispatch loop with twelve handlers; every
// handler's closing jump raises the loop's B field.
Program
buildM88ksim(const WorkloadScale &scale)
{
    constexpr int64_t table = heapBase;
    constexpr int64_t code = table + 64;
    constexpr int64_t code_len = 1 << 12;
    ProgramBuilder b("m88ksim", code + code_len + 1024);

    prologue(b, 0x88c5);

    std::vector<DispatchHandler> handlers = {
        {26, false, false, 0}, {32, true, false, 0},
        {38, false, false, 0}, {30, true, false, 0},
        {36, false, false, 0}, {24, true, false, 0},
        {40, false, false, 0}, {32, false, false, 0},
        {28, true, false, 0}, {37, false, false, 0},
        {31, false, true, 3, 10}, {26, false, true, 3, 10},
        {34, false, true, 8, 14}, // ld/st multiple
    };
    emitDispatchLoop(b, handlers, table, code, code_len,
                     static_cast<int64_t>(scale.reps(88000)));

    // Periodic device/timer scans (constant trips, shallow).
    driverLoop(b, scale.reps(600), [&] {
        b.li(r1, 0);
        b.li(r2, 16);
        b.countedLoop(r1, r2, [&](const LoopCtx &) {
            b.ld(r20, r1, table);
            b.addi(r20, r20, 1);
            b.st(r20, r1, table);
        });
        // Trap path: a rare 3-deep nest (max nesting 5 with the farm
        // wrapper below).
        everyNth(b, 63, [&] {
            emitRegularNest(b, {{4, 10, false}, {4, 12, true},
                                {4, 14, true}},
                            heapBase, 1 << 12);
        });
    });

    emitLoopFarm(b, 114, 3, 2);
    b.halt();
    return b.build();
}

// perl: interpreter driven by *recursion*, not loops — most loop
// executions happen at CLS depth 1 (Table 1: avg nesting 1.35, the
// suite's flattest). Tiny, unpredictable trip counts (1..4) defeat STR:
// hit ratio ~60%, TPC ~1.2, spec-to-verify only ~35 instructions.
Program
buildPerl(const WorkloadScale &scale)
{
    constexpr int64_t words = 1 << 13;
    ProgramBuilder b("perl", heapBase + words);

    prologue(b, 0x9e21);
    b.li(r10, static_cast<int64_t>(scale.reps(5200))); // statement count
    b.call("interp");
    emitLoopFarm(b, 132, 2, 2);
    b.halt();

    // interp: execute one statement's ops, then recurse for the next
    // statement. The recursion (not a loop) carries the program, so the
    // op loops run with an empty CLS.
    b.beginFunction("interp");
    Label done = b.newLabel();
    b.beq(r10, r0, done);
    for (int op = 0; op < 4; ++op) {
        emitBigBlock(b, 20, r20, r21);
        // String/array op loop: trip 1..4 (often invisible single-iter).
        if (op % 2) {
            emitVarNest(b, {{2, 0, 14, false}}, heapBase, words);
        } else if (op == 0) {
            emitVarNest(b, {{3, 0, 14, true}}, heapBase, words);
        } else {
            emitVarNest(b, {{1, 1, 14, true}}, heapBase, words);
        }
    }
    // Every 8th statement: regex match, a rare deeper section (the
    // suite's max nesting of 5).
    b.andi(r13, r10, 31);
    b.ifElse([&](Label else_l) { b.bne(r13, r0, else_l); },
             [&]() {
                 emitVarNest(b,
                             {{2, 1, 10, false},
                              {2, 1, 10, false},
                              {1, 3, 10, false},
                              {1, 3, 12, true},
                              {2, 0, 12, true}},
                             heapBase, words);
             });
    b.addi(r10, r10, -1);
    b.call("interp");
    b.bind(done);
    b.ret();

    return b.build();
}

// vortex: OO database transactions. Targets: 220 loops, ~12 iter/exec,
// ~215 instr/iter, nesting 3.1/6, hit ratio ~90%, TPC ~3.0. Object
// handlers reached through an indirect-call table; record-copy loops
// have constant per-handler trips.
Program
buildVortex(const WorkloadScale &scale)
{
    constexpr int64_t ftable = heapBase;      // function-pointer table
    constexpr int64_t htable = ftable + 16;   // hash index, 1024 slots
    constexpr int64_t records = htable + 1024;
    constexpr int64_t words = 1 << 12;
    ProgramBuilder b("vortex", records + words + 1024);

    static constexpr int64_t copy_trips[5] = {12, 16, 20, 8, 24};

    prologue(b, 0x40e7);
    // Build the object-handler dispatch table.
    for (int h = 0; h < 5; ++h) {
        b.liFunc(r20, strprintf("obj%d", h));
        b.li(r21, h);
        b.st(r20, r21, ftable);
    }
    driverLoop(b, scale.reps(1300), [&] {
        // Pick an object type, dispatch through memory (CallInd).
        emitLcgStep(b, r28);
        b.li(r20, 5);
        b.rem(r28, r28, r20);
        b.ld(r28, r28, ftable);
        b.callInd(r28);
        // Index maintenance probe.
        emitHashProbe(b, htable, 1023);
        emitBigBlock(b, 40, r27, r28);
    });
    emitLoopFarm(b, 190, 3, 2);
    b.halt();

    for (int h = 0; h < 5; ++h) {
        b.beginFunction(strprintf("obj%d", h));
        // Two record-copy loops per handler, directly under the driver
        // (depth 2); handler 3 adds a deeper validation nest (to 4).
        for (int part = 0; part < 2; ++part) {
            b.li(r1, 0);
            b.li(r2, copy_trips[h] / (part + 1));
            b.countedLoop(r1, r2, [&](const LoopCtx &) {
                b.addi(r20, r1, h * 37);
                b.andi(r20, r20, words - 1);
                b.ld(r21, r20, records);
                b.addi(r21, r21, 1);
                b.st(r21, r20, records);
                emitBigBlock(b, 80, r22, r23);
            });
        }
        if (h == 3) {
            emitRegularNest(b, {{4, 8, false}, {4, 10, false},
                                {4, 10, true}},
                            records, words);
        }
        b.ret();
    }
    return b.build();
}

// ijpeg: image compression. Targets: 198 loops, ~21 iter/exec, ~336
// instr/iter, nesting 6.4/9, hit ratio ~97% (constant 8x8/64 trips),
// TPC ~2.4. Block pipeline: rows x cols x components x (DCT 8x8 pairs,
// quant-64, colour-convert).
Program
buildIjpeg(const WorkloadScale &scale)
{
    constexpr int64_t words = 1 << 14;
    ProgramBuilder b("ijpeg", heapBase + words);

    prologue(b, 0x19e6);
    emitArrayInit(b, heapBase, words, 0xffff, r1, r20, r2);

    driverLoop(b, scale.reps(8), [&] {
        // MCU rows(2) x cols(3) x components(4).
        b.li(r3, 0);
        b.li(r4, 3);
        b.countedLoop(r3, r4, [&](const LoopCtx &) {
            b.li(r5, 0);
            b.li(r6, 3);
            b.countedLoop(r5, r6, [&](const LoopCtx &) {
                b.li(r7, 0);
                b.li(r8, 3);
                b.countedLoop(r7, r8, [&](const LoopCtx &) {
                    // Two 8x8 DCT double loops (depths 5 and 6).
                    for (int pass = 0; pass < 2; ++pass) {
                        b.li(r13, 0);
                        b.li(r14, 8);
                        b.countedLoop(r13, r14, [&](const LoopCtx &) {
                            b.li(r15, 0);
                            b.li(r16, 8);
                            b.countedLoop(r15, r16,
                                          [&](const LoopCtx &) {
                                b.mul(r20, r13, r14);
                                b.add(r20, r20, r15);
                                b.andi(r20, r20, words - 1);
                                b.ld(r21, r20, heapBase);
                                b.add(r21, r21, r15);
                                b.st(r21, r20, heapBase);
                                emitBigBlock(b, 90, r22, r23);
                            });
                        });
                    }
                    // Quantisation + zigzag: three trip-64 loops.
                    for (int q = 0; q < 3; ++q) {
                        b.li(r13, 0);
                        b.li(r14, 64);
                        b.countedLoop(r13, r14, [&](const LoopCtx &) {
                            b.andi(r20, r13, words - 1);
                            b.ld(r21, r20, heapBase);
                            b.addi(r21, r21, 3);
                            b.st(r21, r20, heapBase);
                            emitBigBlock(b, 45, r22, r23);
                        });
                    }
                    // Huffman emit: short variable trips, occasionally
                    // two levels deeper (max nesting 8).
                    emitVarNest(b, {{1, 3, 14, true}, {1, 1, 10, true}},
                                heapBase, words);
                });
            });
        });
        // Colour conversion: one long row loop per driver iteration.
        b.li(r1, 0);
        b.li(r2, 512);
        b.countedLoop(r1, r2, [&](const LoopCtx &) {
            b.andi(r20, r1, words - 1);
            b.ld(r21, r20, heapBase);
            b.muli(r21, r21, 3);
            b.st(r21, r20, heapBase);
            emitBigBlock(b, 40, r22, r23);
        });
    });

    emitLoopFarm(b, 185, 3, 2);
    b.halt();
    return b.build();
}

} // namespace loopspec
