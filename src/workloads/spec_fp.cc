/**
 * @file
 * The ten SPECfp95-shaped synthetic workloads. Each builder states its
 * Table-1 calibration targets (static loops / iterations-per-execution /
 * instructions-per-iteration / avg and max nesting) and the structural
 * choices that realise them; see docs/DESIGN.md §2 for the methodology.
 */

#include "workloads/workload.hh"

#include <functional>

#include "workloads/kernels.hh"

namespace loopspec
{

using namespace regs;
using namespace kernels;

namespace
{

constexpr int64_t spillBase = 1024;
constexpr int64_t heapBase = 8192;

/** Standard prologue: spill stack pointer and LCG seed. */
void
prologue(ProgramBuilder &b, int64_t seed)
{
    b.beginFunction("main");
    b.li(spReg, spillBase);
    b.li(lcgReg, seed);
}

/** Outer time-step driver on r9/r19 (registers the kernels keep free). */
void
timeSteps(ProgramBuilder &b, uint64_t steps,
          const std::function<void()> &body)
{
    b.li(r9, 0);
    b.li(r19, static_cast<int64_t>(steps));
    b.countedLoop(r9, r19, [&](const LoopCtx &) { body(); });
}

/** 1D boundary-condition style copy loop of @p len words. */
void
rowCopy(ProgramBuilder &b, int64_t dst, int64_t src, int64_t len)
{
    b.li(r1, 0);
    b.li(r2, len);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.ld(r20, r1, src);
        b.st(r20, r1, dst);
    });
}

} // namespace

// swim: shallow-water stencils. Targets: 79 loops, ~189 iter/exec (the
// suite's most iteration-rich program), ~279 instr/iter, nesting 3/3.
// Realised as 3 big 5-point stencil sweeps per time step over an
// (n x n) grid with n = 100, plus boundary loops and reductions.
Program
buildSwim(const WorkloadScale &scale)
{
    constexpr int64_t n = 64;
    constexpr int64_t grid = n * n + 2 * n;
    const int64_t a = heapBase + n;
    const int64_t bb = a + grid;
    const int64_t c = bb + grid;
    ProgramBuilder b("swim", c + grid + n);

    prologue(b, 0x5317);
    emitArrayInit(b, a - n, 3 * grid, 0xffff, r1, r20, r2);

    timeSteps(b, scale.reps(8), [&] {
        emitStencil(b, bb, a, n, 105); // calc1
        emitStencil(b, c, bb, n, 105); // calc2
        emitStencil(b, a, c, n, 105);  // calc3
        rowCopy(b, a, a + n * (n - 1), n);          // periodic BC north
        rowCopy(b, a + n * (n - 1), a + n, n);      // periodic BC south
        rowCopy(b, bb, bb + n * (n - 1), n);
        rowCopy(b, c, c + n * (n - 1), n);
        b.li(r28, 0);
        emitReduction(b, a, n, r28);  // convergence check row
        emitReduction(b, bb, n, r28);
    });

    emitLoopFarm(b, 64, 3, 2); // pad static loops to the Table-1 count
    b.halt();
    return b.build();
}

// tomcatv: mesh generation. Targets: 91 loops, ~57 iter/exec, ~225
// instr/iter, nesting 3/4. Grid n = 59; one sweep variant carries an
// extra inner loop for the depth-4 sections.
Program
buildTomcatv(const WorkloadScale &scale)
{
    constexpr int64_t n = 59;
    constexpr int64_t grid = n * n + 2 * n;
    const int64_t a = heapBase + n;
    const int64_t bb = a + grid;
    ProgramBuilder b("tomcatv", bb + grid + n);

    prologue(b, 0x70c4);
    emitArrayInit(b, a - n, 2 * grid, 0xffff, r1, r20, r2);

    timeSteps(b, scale.reps(6), [&] {
        emitStencil(b, bb, a, n, 58); // residual sweep
        emitStencil(b, a, bb, n, 58); // update sweep
        // Relaxation: the third sweep runs twice under a sub-step loop
        // (its row/column loops sit at depths 3/4 — tomcatv's max).
        b.li(r13, 0);
        b.li(r14, 2);
        b.countedLoop(r13, r14, [&](const LoopCtx &) {
            emitStencil(b, bb, a, n, 58);
        });
        b.li(r28, 0);
        emitReduction(b, a, n, r28); // rx/ry max-residual rows
        emitReduction(b, bb, n, r28);
    });

    emitLoopFarm(b, 78, 3, 2);
    b.halt();
    return b.build();
}

// mgrid: multigrid V-cycles. Targets: 142 loops, ~29 iter/exec, ~513
// instr/iter, nesting ~4.9/6. Four grid levels of decreasing size, each
// a 3-deep nest under the level/driver loops; the finest level carries a
// depth-6 micro loop.
Program
buildMgrid(const WorkloadScale &scale)
{
    constexpr int64_t words = 1 << 15;
    ProgramBuilder b("mgrid", heapBase + words);

    prologue(b, 0x316d);
    emitArrayInit(b, heapBase, words, 0xffff, r1, r20, r2);

    struct Level
    {
        int64_t trip;
        unsigned alu;
        bool micro;
    };
    static constexpr Level levels[] = {
        {18, 160, true}, {12, 165, false}, {8, 165, false},
        {5, 165, false}};

    timeSteps(b, scale.reps(4), [&] {
        for (const Level &lv : levels) {
            // resid/psinv: 3-deep rectangular nest per level.
            b.li(r3, 0);
            b.li(r4, lv.trip); // level loop proxy at depth 2
            b.countedLoop(r3, r4, [&](const LoopCtx &) {
                b.li(r5, 0);
                b.li(r6, lv.trip);
                b.countedLoop(r5, r6, [&](const LoopCtx &) {
                    b.li(r7, 0);
                    b.li(r8, lv.trip);
                    b.countedLoop(r7, r8, [&](const LoopCtx &) {
                        emitBigBlock(b, lv.alu, r20, r21);
                        b.mul(r22, r5, r6);
                        b.add(r22, r22, r7);
                        b.andi(r22, r22, words - 1);
                        b.ld(r23, r22, heapBase);
                        b.add(r23, r23, r7);
                        b.st(r23, r22, heapBase);
                        if (lv.micro) {
                            // Rare boundary fix-up, two levels deep
                            // (depths 5-6) — guarded to fire once per
                            // inner execution, after the inner loop is
                            // detected, so its tiny executions do not
                            // swamp iterations-per-execution.
                            b.li(r24, 4);
                            b.ifElse(
                                [&](Label e) { b.bne(r7, r24, e); },
                                [&]() {
                                    b.li(r13, 0);
                                    b.li(r14, 3);
                                    b.countedLoop(r13, r14,
                                                  [&](const LoopCtx &) {
                                        b.li(r15, 0);
                                        b.li(r16, 2);
                                        b.countedLoop(
                                            r15, r16,
                                            [&](const LoopCtx &) {
                                            emitBigBlock(b, 4, r25,
                                                         r26);
                                        });
                                    });
                                });
                        }
                    });
                });
            });
        }
    });

    emitLoopFarm(b, 127, 3, 2);
    b.halt();
    return b.build();
}

// hydro2d: many small Navier-Stokes sweeps. Targets: 291 loops, ~29
// iter/exec (n = 31 grids), ~128 instr/iter, nesting 3.5/4.
Program
buildHydro2d(const WorkloadScale &scale)
{
    constexpr int64_t n = 31;
    constexpr int64_t grid = n * n + 2 * n;
    const int64_t a = heapBase + n;
    const int64_t bb = a + grid;
    ProgramBuilder b("hydro2d", bb + grid + n);

    prologue(b, 0x42d0);
    emitArrayInit(b, a - n, 2 * grid, 0xffff, r1, r20, r2);

    timeSteps(b, scale.reps(14), [&] {
        for (int sweep = 0; sweep < 3; ++sweep) {
            emitStencil(b, bb, a, n, 28);
            emitStencil(b, a, bb, n, 28);
        }
        // One sweep sits one level deeper (advection sub-steps).
        b.li(r13, 0);
        b.li(r14, 2);
        b.countedLoop(r13, r14, [&](const LoopCtx &) {
            emitStencil(b, bb, a, n, 28);
        });
    });

    emitLoopFarm(b, 270, 3, 2);
    b.halt();
    return b.build();
}

// su2cor: quark propagator sweeps. Targets: 213 loops, ~51 iter/exec,
// ~257 instr/iter, nesting 3.5/5.
Program
buildSu2cor(const WorkloadScale &scale)
{
    constexpr int64_t n = 53;
    constexpr int64_t grid = n * n + 2 * n;
    const int64_t a = heapBase + n;
    const int64_t bb = a + grid;
    ProgramBuilder b("su2cor", bb + grid + n);

    prologue(b, 0x52c0);
    emitArrayInit(b, a - n, 2 * grid, 0xffff, r1, r20, r2);

    timeSteps(b, scale.reps(5), [&] {
        emitStencil(b, bb, a, n, 70);
        emitStencil(b, a, bb, n, 70);
        // Monte-Carlo update: two more sweeps under a 2-trip spin loop
        // (depth up to 5: driver, spin, update, rows, cols).
        b.li(r13, 0);
        b.li(r14, 2);
        b.countedLoop(r13, r14, [&](const LoopCtx &) {
            emitStencil(b, bb, a, n, 70);
        });
    });

    emitLoopFarm(b, 200, 3, 2);
    b.halt();
    return b.build();
}

// wave5: particle-in-cell. Targets: 195 loops, ~56 iter/exec, ~164
// instr/iter, nesting 3.1/5. Field stencils plus 1D particle-push loops.
Program
buildWave5(const WorkloadScale &scale)
{
    constexpr int64_t n = 58;
    constexpr int64_t grid = n * n + 2 * n;
    const int64_t a = heapBase + n;
    const int64_t bb = a + grid;
    const int64_t particles = bb + grid;
    constexpr int64_t num_particles = 1 << 11;
    ProgramBuilder b("wave5", particles + num_particles + n);

    prologue(b, 0x3a5e);
    emitArrayInit(b, a - n, 2 * grid, 0xffff, r1, r20, r2);
    emitArrayInit(b, particles, num_particles, num_particles - 1, r1, r20,
                  r2);

    timeSteps(b, scale.reps(5), [&] {
        emitStencil(b, bb, a, n, 40); // field solve
        emitStencil(b, a, bb, n, 40);
        // Particle push: 1D gather/scatter over the particle list.
        b.li(r1, 0);
        b.li(r2, num_particles);
        b.countedLoop(r1, r2, [&](const LoopCtx &) {
            b.ld(r20, r1, particles); // cell index
            b.andi(r20, r20, grid - 1);
            b.ld(r21, r20, a);
            b.add(r21, r21, r1);
            b.st(r21, r1, particles);
            emitBigBlock(b, 24, r22, r23);
        });
        // Field transpose section one level deeper (max depth 5).
        b.li(r13, 0);
        b.li(r14, 2);
        b.countedLoop(r13, r14, [&](const LoopCtx &) {
            emitStencil(b, bb, a, n, 40);
        });
    });

    emitLoopFarm(b, 180, 3, 2);
    b.halt();
    return b.build();
}

// applu: SSOR solver with small, data-dependent trip counts — the
// workload whose unpredictable trips defeat the STR predictor (Table 2
// hit ratio ~54%). Targets: 189 loops, ~3.5 iter/exec, ~261 instr/iter,
// nesting ~5.2/7.
Program
buildApplu(const WorkloadScale &scale)
{
    constexpr int64_t words = 1 << 14;
    ProgramBuilder b("applu", heapBase + words);

    prologue(b, 0xab1d);
    emitArrayInit(b, heapBase, words, 0xffff, r1, r20, r2);

    timeSteps(b, scale.reps(22), [&] {
        // jacld/jacu: 5-deep nest, trips uniform in [2,5].
        emitVarNest(b,
                    {{2, 3, 30, false},
                     {2, 3, 35, false},
                     {2, 3, 40, false},
                     {2, 3, 45, true},
                     {2, 3, 50, true}},
                    heapBase, words);
        // blts/buts: 6-deep, the deepest sections (depth 7 with driver).
        emitVarNest(b,
                    {{2, 3, 25, false},
                     {2, 3, 30, false},
                     {2, 3, 35, false},
                     {2, 3, 40, false},
                     {2, 3, 45, true},
                     {2, 3, 50, true}},
                    heapBase, words);
        // rhs: shallower but wider trips.
        emitVarNest(b,
                    {{2, 7, 40, false}, {2, 7, 50, true}},
                    heapBase, words);
    });

    emitLoopFarm(b, 170, 3, 2);
    b.halt();
    return b.build();
}

// apsi: mesoscale weather. Targets: 207 loops, ~10.8 iter/exec, ~229
// instr/iter, nesting 3.1/5; mostly constant trips (hit ratio ~90%) with
// a minority of data-dependent sections.
Program
buildApsi(const WorkloadScale &scale)
{
    constexpr int64_t words = 1 << 14;
    ProgramBuilder b("apsi", heapBase + words);

    prologue(b, 0xa51a);
    emitArrayInit(b, heapBase, words, 0xffff, r1, r20, r2);

    timeSteps(b, scale.reps(24), [&] {
        emitRegularNest(b,
                        {{12, 60, false}, {10, 70, true}, {10, 70, true}},
                        heapBase, words);
        emitRegularNest(b, {{10, 60, false}, {10, 70, true}, {8, 70, true}},
                        heapBase, words);
        // Turbulence closure: variable trips (8..15).
        emitVarNest(b, {{8, 7, 70, true}, {8, 7, 70, true}}, heapBase,
                    words);
        // Chemistry micro-nest: small trips, depth 5 with the driver.
        emitVarNest(b,
                    {{2, 3, 30, false}, {2, 3, 35, true},
                     {2, 3, 40, true}, {2, 3, 45, true}},
                    heapBase, words);
    });

    emitLoopFarm(b, 190, 3, 2);
    b.halt();
    return b.build();
}

// turb3d: turbulence FFTs. Targets: 152 loops, ~4.1 iter/exec (radix-4
// butterflies, perfectly regular: hit ratio ~99%), ~239 instr/iter,
// nesting ~4/6.
Program
buildTurb3d(const WorkloadScale &scale)
{
    constexpr int64_t words = 1 << 14;
    ProgramBuilder b("turb3d", heapBase + words);

    prologue(b, 0x7b3d);
    emitArrayInit(b, heapBase, words, 0xffff, r1, r20, r2);

    timeSteps(b, scale.reps(30), [&] {
        // Four radix-4 FFT stages (constant trip-4 nests, depth 5).
        for (int stage = 0; stage < 4; ++stage) {
            emitRegularNest(b,
                            {{4, 50, false},
                             {4, 55, false},
                             {4, 60, true},
                             {4, 60, true}},
                            heapBase, words);
        }
        // Transpose: 16x16 blocked copy, one under a stage loop (depth 6).
        emitRegularNest(b, {{16, 55, true}, {16, 60, true}}, heapBase,
                        words);
        b.li(r13, 0);
        b.li(r14, 2);
        b.countedLoop(r13, r14, [&](const LoopCtx &) {
            emitRegularNest(b,
                            {{4, 40, false}, {4, 45, true},
                             {4, 50, true}, {4, 50, true}},
                            heapBase, words);
        });
    });

    emitLoopFarm(b, 140, 3, 2);
    b.halt();
    return b.build();
}

// fpppp: electron integrals — enormous straight-line bodies, tiny trip
// counts. Targets: 83 loops, ~3 iter/exec, ~3200 instr/iter (the suite
// outlier), nesting ~6.7/9.
Program
buildFpppp(const WorkloadScale &scale)
{
    constexpr int64_t words = 1 << 13;
    ProgramBuilder b("fpppp", heapBase + words);

    prologue(b, 0xf999);
    emitArrayInit(b, heapBase, words, 0xffff, r1, r20, r2);

    timeSteps(b, scale.reps(4), [&] {
        // Shell-pair nest: trips 2..3, giant bodies at every level
        // (depth 8 with the driver).
        emitVarNest(b,
                    {{3, 0, 500, false},
                     {3, 0, 600, false},
                     {3, 0, 700, true},
                     {2, 0, 800, true},
                     {3, 0, 850, true},
                     {2, 1, 900, true},
                     {2, 0, 950, true}},
                    heapBase, words);
        // Flat integral evaluation between the nests.
        emitBigBlock(b, 1500, r26, r27);
    });

    emitLoopFarm(b, 70, 3, 2);
    b.halt();
    return b.build();
}

} // namespace loopspec
