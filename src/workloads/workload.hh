/**
 * @file
 * The synthetic SPEC95-shaped workload suite. Each of the paper's 18
 * benchmarks is modelled by a generated mini-RISC program whose loop
 * structure (static loop count, trip-count distribution and regularity,
 * iteration size, nesting depth, recursion, path variability) is
 * calibrated to Table 1 and the per-program behaviour in Table 2 and
 * Figures 5-8. See docs/DESIGN.md §2 for the substitution rationale.
 */

#ifndef LOOPSPEC_WORKLOADS_WORKLOAD_HH
#define LOOPSPEC_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "program/program.hh"

namespace loopspec
{

/**
 * Scale control: multiplies the outer "time-step" trip counts so the
 * dynamic instruction count can be dialled from smoke-test to full-run
 * sizes without changing the loop *shape* statistics.
 */
struct WorkloadScale
{
    double factor = 1.0;

    /** Scale an outer repetition count (at least 1). */
    uint64_t
    reps(uint64_t base) const
    {
        double v = static_cast<double>(base) * factor;
        return v < 1.0 ? 1 : static_cast<uint64_t>(v);
    }
};

/** One registered workload. */
struct WorkloadInfo
{
    std::string name;
    Program (*build)(const WorkloadScale &scale);
    const char *description;
    bool floatingPoint; //!< SPECfp-shaped (regular) vs SPECint-shaped
};

/** All 18 workloads, in the paper's Table 1 order. */
const std::vector<WorkloadInfo> &workloadRegistry();

/**
 * Generated (synth.*) workload families from the fuzz harness's program
 * generator. Buildable by name everywhere (--benchmarks synth.nest,...)
 * but kept out of the Table-1 registry so the default bench suite stays
 * the paper's 18 programs.
 */
const std::vector<WorkloadInfo> &syntheticWorkloadRegistry();

/** Names of the synth.* families, registry order. */
std::vector<std::string> syntheticWorkloadNames();

/** Build one workload by name (Table-1 or synth.*); fatal() if unknown. */
Program buildWorkload(const std::string &name, const WorkloadScale &scale);

/** True when buildWorkload(name) would succeed — the non-fatal check
 *  the sweep service runs on remote requests before touching the
 *  builder. */
bool isKnownWorkload(const std::string &name);

/** Names of all workloads, Table 1 order. */
std::vector<std::string> workloadNames();

// Individual builders (exposed for tests and examples).
Program buildApplu(const WorkloadScale &scale);
Program buildApsi(const WorkloadScale &scale);
Program buildCompress(const WorkloadScale &scale);
Program buildFpppp(const WorkloadScale &scale);
Program buildGcc(const WorkloadScale &scale);
Program buildGo(const WorkloadScale &scale);
Program buildHydro2d(const WorkloadScale &scale);
Program buildIjpeg(const WorkloadScale &scale);
Program buildLi(const WorkloadScale &scale);
Program buildM88ksim(const WorkloadScale &scale);
Program buildMgrid(const WorkloadScale &scale);
Program buildPerl(const WorkloadScale &scale);
Program buildSu2cor(const WorkloadScale &scale);
Program buildSwim(const WorkloadScale &scale);
Program buildTomcatv(const WorkloadScale &scale);
Program buildTurb3d(const WorkloadScale &scale);
Program buildVortex(const WorkloadScale &scale);
Program buildWave5(const WorkloadScale &scale);

// Generated families (exposed for tests; see src/workloads/synthetic.cc).
Program buildSynthNest(const WorkloadScale &scale);
Program buildSynthIrregular(const WorkloadScale &scale);
Program buildSynthCalls(const WorkloadScale &scale);
Program buildSynthDegenerate(const WorkloadScale &scale);
Program buildSynthMemdep(const WorkloadScale &scale);
/**
 * 10^5-static-loop scale stressor for the out-of-core trace path
 * (massivePlan): buildable by name like every synth.* family but kept
 * out of syntheticWorkloadRegistry() too — its per-unit-scale dynamic
 * footprint is ~4e9 instructions, so only fuel-bounded (--max-instrs)
 * callers should ever reach it, never a registry sweep.
 */
Program buildSynthMassive(const WorkloadScale &scale);

} // namespace loopspec

#endif // LOOPSPEC_WORKLOADS_WORKLOAD_HH
