/**
 * @file
 * Reusable code-emission kernels the synthetic workloads are composed
 * from: LCG data generation, array sweeps, stencils, reductions, hash
 * probes, pointer chases, interpreter dispatch loops, recursive tree
 * walks, register spill helpers, and straight-line filler blocks.
 *
 * Register conventions used by the kernels (workload authors must keep
 * these free unless stated otherwise):
 *   r29  spill-stack pointer (grows upward)
 *   r31  global LCG state for data-dependent behaviour
 */

#ifndef LOOPSPEC_WORKLOADS_KERNELS_HH
#define LOOPSPEC_WORKLOADS_KERNELS_HH

#include <cstdint>
#include <vector>

#include "program/builder.hh"

namespace loopspec
{
namespace kernels
{

/** Spill-stack pointer register. */
inline constexpr Reg spReg{29};
/** Global LCG state register. */
inline constexpr Reg lcgReg{31};

/** Push @p r onto the spill stack (memory at *sp, sp grows up). */
void emitPush(ProgramBuilder &b, Reg r);

/** Pop the spill-stack top into @p r. */
void emitPop(ProgramBuilder &b, Reg r);

/**
 * Advance the global LCG and leave a pseudo-random non-negative value in
 * @p dst (clobbers nothing else).
 */
void emitLcgStep(ProgramBuilder &b, Reg dst);

/**
 * Emit a loop filling memory[base .. base+count) with LCG values masked
 * to @p mask. Uses @p idx and @p tmp as scratch; creates one loop.
 */
void emitArrayInit(ProgramBuilder &b, int64_t base, int64_t count,
                   int64_t mask, Reg idx, Reg tmp, Reg tmp2);

/** Straight-line ALU filler of exactly @p n instructions, mixing the
 *  accumulator registers @p acc1 / @p acc2. */
void emitBigBlock(ProgramBuilder &b, unsigned n, Reg acc1, Reg acc2);

/** Specification of one level of a regular rectangular loop nest. */
struct NestLevel
{
    int64_t trip;        //!< compile-time trip count (>= 1)
    unsigned bodyAlu;    //!< ALU filler instructions at this level
    bool touchArray;     //!< emit a load+store on the level's array slice
};

/** Maximum supported loop-nest depth of the nest emitters. */
constexpr size_t maxNestDepth = 7;

/** Index/bound registers used by nest level @p level (0 = outermost). */
Reg nestIdxReg(size_t level);
Reg nestBndReg(size_t level);

/**
 * One level of a data-dependent nest: the trip count is drawn per
 * execution as lo + (lcg & mask); mask == 0 gives a constant trip.
 */
struct VarNestLevel
{
    int64_t lo;          //!< minimum trip count (>= 1)
    int64_t mask;        //!< trip randomness mask (0 = constant trip)
    unsigned bodyAlu;
    bool touchArray;
};

/**
 * Emit a nest whose per-level trip counts are drawn at run time from the
 * LCG (unpredictable trip counts: the applu/gcc flavour that defeats the
 * STR stride predictor). Register use as emitRegularNest.
 */
void emitVarNest(ProgramBuilder &b, const std::vector<VarNestLevel> &spec,
                 int64_t array_base, int64_t array_words);

/**
 * Emit a rectangular loop nest (innermost level last). Uses registers
 * r1..r(2*depth) for indices/bounds and r20..r23 as scratch; arrays are
 * addressed from @p array_base with row-major strides. The innermost
 * level does a strided a[i]=f(a[i],b[i]) update when touchArray is set.
 */
void emitRegularNest(ProgramBuilder &b, const std::vector<NestLevel> &spec,
                     int64_t array_base, int64_t array_words);

/**
 * Emit a 5-point stencil sweep over an n x n grid: two nested loops,
 * inner body reads four neighbours and writes the centre.
 * dst/src are word offsets of n*n arrays. Registers r1..r4, r20..r25.
 */
void emitStencil(ProgramBuilder &b, int64_t dst, int64_t src, int64_t n,
                 unsigned extraAlu);

/**
 * Emit a reduction loop summing memory[base .. base+count) into @p acc.
 * Registers r1, r2, r20.
 */
void emitReduction(ProgramBuilder &b, int64_t base, int64_t count,
                   Reg acc);

/**
 * Emit a hash-table probe: computes an LCG-derived key, hashes it, then
 * walks table slots with a data-dependent while loop until an empty slot
 * or match is found (open addressing, linear probing); on miss inserts.
 * The table must have been initialised (zeros = empty). Trip counts are
 * short and data dependent. Registers r20..r26.
 *
 * @param table word offset of the table (power-of-two slots)
 * @param slot_mask slots-1
 */
void emitHashProbe(ProgramBuilder &b, int64_t table, int64_t slot_mask);

/**
 * Emit a pointer-chase walk: follows next[] indices starting from a
 * register until a sentinel (< 0) or @p max_steps. The rings must be laid
 * out by emitRingInit. Registers r20..r24; @p start holds the start node.
 */
void emitPointerChase(ProgramBuilder &b, int64_t next_base, Reg start,
                      int64_t max_steps, unsigned body_alu);

/**
 * Emit a loop building rings in next[]: node i -> i+1 except every
 * ring_len-th node closes back to the ring head... actually chains of
 * ring_len nodes ending in -1 sentinels. Registers r1, r2, r20..r22.
 */
void emitRingInit(ProgramBuilder &b, int64_t next_base, int64_t count,
                  int64_t ring_len);

/** One opcode handler of an interpreter dispatch loop. */
struct DispatchHandler
{
    unsigned bodyAlu;     //!< ALU work in the handler
    bool touchMemory;     //!< handler loads/stores a data cell
    bool innerLoop;       //!< handler contains a short counted loop
    int64_t innerTrip;    //!< trip count of that loop
    unsigned innerAlu = 8; //!< ALU work per inner-loop iteration
};

/**
 * Emit an interpreter main loop: fetch "bytecode" from code_base+pc,
 * dispatch through an indirect jump table to one of the handlers, each
 * handler jumps back to the loop head (several backward jumps to one
 * target — exercising multi-closing-branch B updates). Execution runs
 * for @p steps instructions of bytecode, wrapping around @p code_len.
 * The bytecode and the jump table are built by emitted init loops.
 * Registers r1 (vpc), r2 (steps), r20..r27.
 *
 * @param table word offset where the jump table is stored
 * @param code_base word offset of the bytecode array
 */
void emitDispatchLoop(ProgramBuilder &b,
                      const std::vector<DispatchHandler> &handlers,
                      int64_t table, int64_t code_base, int64_t code_len,
                      int64_t steps);

/**
 * Emit a recursive tree-walk function named @p fn that calls @p callee
 * from inside its loops: walks a pseudo-random tree of depth r10, with a
 * counted loop of trip @p loop_trip at each node containing the recursive
 * call (the paper's loop-inside-recursion scenario, §2.2), choosing
 * between two arms (two distinct static loops) by LCG parity. Call with
 * r10 = depth. Passing @p callee == @p fn gives direct recursion; a cycle
 * f0 -> f1 -> ... -> f0 gives mutual recursion whose distinct static
 * loops stack up in the CLS (deep dynamic nesting, as in go).
 */
void emitRecursiveTree(ProgramBuilder &b, const std::string &fn,
                       const std::string &callee, int64_t loop_trip,
                       unsigned body_alu);

/**
 * Emit @p count distinct tiny counted loops (trip @p trip, @p alu body
 * instructions each), run sequentially once. Pads a workload's *static*
 * loop population to its Table-1 target with negligible dynamic weight.
 * Uses r1/r2 and r20/r21.
 */
void emitLoopFarm(ProgramBuilder &b, unsigned count, int64_t trip,
                  unsigned alu);

} // namespace kernels
} // namespace loopspec

#endif // LOOPSPEC_WORKLOADS_KERNELS_HH
