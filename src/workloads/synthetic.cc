/**
 * @file
 * Generated (synth.*) workload families: fixed-seed instances of the
 * fuzz harness's ProgramGenerator registered as named workloads, so the
 * bench binaries can sweep the irregular loop shapes the curated SPEC95
 * models barely cover (--benchmarks synth.nest,synth.irregular,...).
 * They are intentionally NOT part of the Table-1 registry: the default
 * bench suite stays the paper's 18 programs.
 */

#include "synth/program_generator.hh"
#include "workloads/workload.hh"

namespace loopspec
{

namespace
{

using synth::GenConfig;
using synth::ProgramGenerator;

/** Shared emission: plan once, scale via the outer-reps wrapper. */
Program
buildFamily(const GenConfig &gcfg, uint64_t seed, const char *name,
            const WorkloadScale &scale)
{
    ProgramGenerator gen(gcfg);
    return gen.emit(gen.plan(seed), name, scale.reps(8));
}

} // namespace

Program
buildSynthNest(const WorkloadScale &scale)
{
    // Deep, mostly-regular nests: CLS overflow pressure at small sizes.
    GenConfig g;
    g.maxDepth = 8;
    g.nestProb = 0.8;
    g.dataDepProb = 0.05;
    g.earlyExitProb = 0.05;
    g.continueProb = 0.0;
    g.multiBackedgeProb = 0.0;
    g.overlapProb = 0.0;
    g.degenerateProb = 0.05;
    g.callProb = 0.0;
    g.maxFunctions = 0;
    // Families predating the data-dependence layer pin loopCarriedProb
    // to 0: their plans — and every artifact recorded from them — must
    // stay byte-stable across the generator gaining new shapes.
    g.loopCarriedProb = 0.0;
    return buildFamily(g, 1101, "synth.nest", scale);
}

Program
buildSynthIrregular(const WorkloadScale &scale)
{
    // Break/continue/multi-backedge/overlap heavy control flow.
    GenConfig g;
    g.maxDepth = 5;
    g.dataDepProb = 0.2;
    g.earlyExitProb = 0.25;
    g.continueProb = 0.2;
    g.multiBackedgeProb = 0.15;
    g.overlapProb = 0.12;
    g.degenerateProb = 0.05;
    g.callProb = 0.0;
    g.maxFunctions = 0;
    g.loopCarriedProb = 0.0;
    return buildFamily(g, 2202, "synth.irregular", scale);
}

Program
buildSynthCalls(const WorkloadScale &scale)
{
    // Call-dense: loops around direct/indirect calls, loops in callees,
    // early returns from inside callee loops.
    GenConfig g;
    g.maxDepth = 4;
    g.maxFunctions = 4;
    g.callProb = 0.55;
    g.earlyExitProb = 0.2;
    g.degenerateProb = 0.05;
    g.loopCarriedProb = 0.0;
    return buildFamily(g, 3303, "synth.calls", scale);
}

Program
buildSynthMassive(const WorkloadScale &scale)
{
    // Scale stressor for the out-of-core trace path: 1.2e5 distinct
    // flat loops (far beyond any CLS capacity, so nearly every entry
    // misses) and a dynamic footprint of roughly 4e9 instructions per
    // unit scale. Always run it fuel-bounded (--max-instrs); it is
    // resolved by name only, so registry-driven suites never pick it up.
    synth::ProgramGenerator gen;
    return gen.emit(synth::massivePlan(5505, 120000), "synth.massive",
                    scale.reps(1000));
}

Program
buildSynthDegenerate(const WorkloadScale &scale)
{
    // Trip-1 loops, self-branches and tiny trips: the detector's edge
    // cases at statistical weight.
    GenConfig g;
    g.maxDepth = 6;
    g.degenerateProb = 0.5;
    g.maxTrip = 3;
    g.nestProb = 0.5;
    g.callProb = 0.0;
    g.maxFunctions = 0;
    g.loopCarriedProb = 0.0;
    return buildFamily(g, 4404, "synth.degenerate", scale);
}

Program
buildSynthMemdep(const WorkloadScale &scale)
{
    // Loop-carried memory recurrences at statistical weight: nearly
    // every loop stores a[i] and loads a[i-1], so cross-iteration RAW
    // conflicts are dense. This is the adversarial substrate for the
    // data-dependence layer (docs/DATASPEC.md): control-only
    // speculation books phantom TPC here that collapses once profiled
    // conflicts are charged.
    GenConfig g;
    g.maxDepth = 4;
    g.loopCarriedProb = 0.6;
    g.dataDepProb = 0.10;
    g.earlyExitProb = 0.05;
    g.continueProb = 0.0;
    g.multiBackedgeProb = 0.0;
    g.overlapProb = 0.0;
    g.degenerateProb = 0.05;
    g.callProb = 0.0;
    g.maxFunctions = 0;
    return buildFamily(g, 6606, "synth.memdep", scale);
}

const std::vector<WorkloadInfo> &
syntheticWorkloadRegistry()
{
    static const std::vector<WorkloadInfo> registry = {
        {"synth.nest", buildSynthNest,
         "generated deep regular nests (CLS overflow pressure)", false},
        {"synth.irregular", buildSynthIrregular,
         "generated breaks/continues/multi-backedge/overlapped loops",
         false},
        {"synth.calls", buildSynthCalls,
         "generated call-dense loops with early returns", false},
        {"synth.degenerate", buildSynthDegenerate,
         "generated trip-1/self-branch degenerate loops", false},
        {"synth.memdep", buildSynthMemdep,
         "generated loop-carried load/store recurrences (dense "
         "cross-iteration RAW conflicts)", false},
    };
    return registry;
}

std::vector<std::string>
syntheticWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : syntheticWorkloadRegistry())
        names.push_back(w.name);
    return names;
}

} // namespace loopspec
