#include "workloads/workload.hh"

#include "util/logging.hh"

namespace loopspec
{

const std::vector<WorkloadInfo> &
workloadRegistry()
{
    static const std::vector<WorkloadInfo> registry = {
        {"applu", buildApplu,
         "SSOR solver, small data-dependent trips", true},
        {"apsi", buildApsi, "mesoscale weather, mostly-regular nests",
         true},
        {"compress", buildCompress, "LZW coding, inline hash probing",
         false},
        {"fpppp", buildFpppp, "electron integrals, huge basic blocks",
         true},
        {"gcc", buildGcc, "compiler passes, 1200+ static loops", false},
        {"go", buildGo, "game-tree search, mutual recursion", false},
        {"hydro2d", buildHydro2d, "Navier-Stokes sweeps on small grids",
         true},
        {"ijpeg", buildIjpeg, "JPEG block pipeline, deep regular nests",
         false},
        {"li", buildLi, "lisp interpreter, cons chases + recursion",
         false},
        {"m88ksim", buildM88ksim, "CPU simulator dispatch loop", false},
        {"mgrid", buildMgrid, "multigrid V-cycles", true},
        {"perl", buildPerl, "recursion-driven interpreter, flat loops",
         false},
        {"su2cor", buildSu2cor, "quark propagator sweeps", true},
        {"swim", buildSwim, "shallow-water stencils, huge trip counts",
         true},
        {"tomcatv", buildTomcatv, "mesh generation stencils", true},
        {"turb3d", buildTurb3d, "turbulence radix-4 FFTs", true},
        {"vortex", buildVortex, "OO database transactions", false},
        {"wave5", buildWave5, "particle-in-cell plasma", true},
    };
    return registry;
}

Program
buildWorkload(const std::string &name, const WorkloadScale &scale)
{
    for (const auto &w : workloadRegistry()) {
        if (w.name == name)
            return w.build(scale);
    }
    for (const auto &w : syntheticWorkloadRegistry()) {
        if (w.name == name)
            return w.build(scale);
    }
    // Deliberately not in any registry (see workload.hh): a suite that
    // iterates a registry must never stumble into a 4e9-instr workload.
    if (name == "synth.massive")
        return buildSynthMassive(scale);
    fatal("unknown workload '%s'", name.c_str());
}

bool
isKnownWorkload(const std::string &name)
{
    for (const auto &w : workloadRegistry())
        if (w.name == name)
            return true;
    for (const auto &w : syntheticWorkloadRegistry())
        if (w.name == name)
            return true;
    return name == "synth.massive";
}

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &w : workloadRegistry())
        names.push_back(w.name);
    return names;
}

} // namespace loopspec
