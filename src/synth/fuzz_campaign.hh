/**
 * @file
 * Differential fuzz campaigns over generated programs: a seed range is
 * sharded across a std::thread pool, every seed's program is checked by
 * the DiffChecker, and failures are minimised by structural delta
 * debugging on the generator's plan (the "structure vector") — never on
 * emitted code, so every shrink candidate is again a valid, terminating
 * program. Results merge deterministically (per-seed slots, ascending
 * seed order) regardless of scheduling.
 */

#ifndef LOOPSPEC_SYNTH_FUZZ_CAMPAIGN_HH
#define LOOPSPEC_SYNTH_FUZZ_CAMPAIGN_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "synth/diff_checker.hh"
#include "synth/program_generator.hh"

namespace loopspec
{
namespace synth
{

/** Campaign configuration. */
struct FuzzOptions
{
    uint64_t seedLo = 0;
    uint64_t seedHi = 99; //!< inclusive
    GenConfig gen;
    DiffConfig diff;
    unsigned jobs = 0;  //!< worker threads; 0 = one per hardware thread
    bool shrink = true; //!< minimise failures structurally
};

/** One failing seed, with its (possibly shrunk) repro plan. */
struct FuzzFailure
{
    uint64_t seed = 0;
    std::string message;       //!< divergence of the original program
    std::string shrunkMessage; //!< divergence of the shrunk plan
    ProgramPlan plan;          //!< shrunk plan (original when !shrink)
    uint64_t loops = 0;        //!< plan.loopCount() of the repro
};

/** Merged campaign outcome. */
struct FuzzReport
{
    uint64_t seedsRun = 0;
    std::vector<FuzzFailure> failures; //!< ascending seed order
};

/** Run the campaign; deterministic for fixed options. */
FuzzReport runFuzzCampaign(const FuzzOptions &opts);

/**
 * Structural delta debugging: repeatedly drop top-level chunks, hoist
 * children over their parent, simplify shapes and empty helper
 * functions while the DiffChecker still reports a failure. Returns the
 * smallest still-failing plan found; @p failure_out (optional) receives
 * its divergence message. @p plan must fail, or it is returned as is.
 */
ProgramPlan shrinkPlan(const ProgramGenerator &gen, const ProgramPlan &plan,
                       const DiffConfig &diff,
                       std::string *failure_out = nullptr);

/**
 * Repro dump: a JSON object wrapping the failing plan with the seed,
 * divergence message, loop count and checked CLS sizes. The "plan" value
 * is a ProgramPlan::save() document, so it can be re-run standalone.
 */
void writeReproJson(std::ostream &os, const FuzzFailure &failure,
                    const DiffConfig &diff);

/** Extract the plan from a writeReproJson() document (or accept a bare
 *  ProgramPlan::save() document); fatal() on malformed input. */
ProgramPlan loadReproPlan(std::istream &is);

} // namespace synth
} // namespace loopspec

#endif // LOOPSPEC_SYNTH_FUZZ_CAMPAIGN_HH
