/**
 * @file
 * Seeded synthetic-program generator for the differential fuzz harness.
 *
 * Generation is split into two deterministic stages so failures can be
 * minimised structurally:
 *
 *   seed --plan()--> ProgramPlan --emit()--> Program
 *
 * The ProgramPlan is the "structure vector": a tree of loop descriptors
 * (shape, trip count, body padding, nesting, helper-function calls) plus
 * the helper-function bodies. The shrinker edits the plan — never the
 * emitted code — and re-emits, so every shrink step is again a valid,
 * terminating program.
 *
 * Every shape is terminating by construction: all loops count a strictly
 * increasing index toward a bound fixed at loop entry; breaks only leave
 * early; continues sit after the increment. Data-dependent trip counts
 * come from the same LCG substrate the workloads use (kernels.hh, r31).
 */

#ifndef LOOPSPEC_SYNTH_PROGRAM_GENERATOR_HH
#define LOOPSPEC_SYNTH_PROGRAM_GENERATOR_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "program/program.hh"
#include "util/rng.hh"

namespace loopspec
{
namespace synth
{

/** Loop shapes the generator can emit (all terminating). */
enum class LoopShape : uint8_t
{
    Counted,       //!< constant-trip do-while (the CLS's bread and butter)
    DataDep,       //!< trip = lo + (lcg & mask), drawn per entry
    EarlyExit,     //!< counted, with a data-dependent break
    WhileContinue, //!< while-form; a backward continue adds a 2nd backedge
    MultiBackedge, //!< do-while closed by two distinct backward transfers
    Overlapped,    //!< rotated loop pair: T1 < T2 <= B1 < B2
    SelfBranch,    //!< not-taken backward branch to itself (single-iter)
    Trip1,         //!< 1-iteration counted loop (not-taken close)
    LoopCarried,   //!< body stores a[i] and loads a[i-1]: every iteration
                   //!< after the first reads the previous iteration's
                   //!< store (the cross-iteration RAW substrate of the
                   //!< conflict profiler, docs/DATASPEC.md)
    NumShapes,
};

/** Printable shape name (stable; used in the repro JSON). */
const char *loopShapeName(LoopShape shape);

/** Parse a name produced by loopShapeName(); fatal() on junk. */
LoopShape loopShapeFromName(const std::string &name);

/**
 * One loop of the plan. `trip` is the (base) trip count; DataDep draws
 * trip + (lcg & mask) at run time. `pad` straight-line filler
 * instructions are emitted at the top of the body. `callFunc` >= 0 calls
 * that helper function from the body (callIndirect selects CallInd via a
 * liFunc'd register). Children nest inside the body, after the padding.
 */
struct LoopNode
{
    LoopShape shape = LoopShape::Counted;
    int64_t trip = 2;
    int64_t mask = 0;
    uint8_t pad = 0;
    int8_t callFunc = -1;
    bool callIndirect = false;
    std::vector<LoopNode> children;

    /** Loops this node contributes (Overlapped emits two). */
    uint64_t loopCount() const;
};

/**
 * The structure vector of one generated program. Helper functions are
 * flat (depth <= 2) loop sequences; function k may only call functions
 * with a larger index, so call chains are acyclic and terminate.
 */
struct ProgramPlan
{
    uint64_t seed = 0;
    std::vector<LoopNode> main;
    std::vector<std::vector<LoopNode>> funcs;

    /** Total loops in the plan (shrink-target metric). */
    uint64_t loopCount() const;

    /** Serialise as JSON (the repro format). */
    void save(std::ostream &os) const;

    /** Parse a plan saved by save(); fatal() on malformed input. */
    static ProgramPlan load(std::istream &is);
};

/** Structure knobs of the generator. */
struct GenConfig
{
    /** Maximum loop-nest depth in main (register budget caps it at 8). */
    unsigned maxDepth = 6;

    /** Maximum loops per block at one nesting level. */
    unsigned maxLoopsPerBlock = 3;

    /** Helper functions to generate (0..4). */
    unsigned maxFunctions = 2;

    /** Base trip counts are drawn from [1, maxTrip]. */
    int64_t maxTrip = 5;

    /**
     * Rough dynamic-size budget (instructions). The planner tracks the
     * product of ancestor trip counts and stops nesting/appending when
     * the estimate exceeds this, keeping generated traces small enough
     * to diff exhaustively.
     */
    uint64_t dynInstrBudget = 60000;

    // Per-loop probabilities of the irregular shapes (the remainder is
    // plain Counted). Degenerate = SelfBranch or Trip1.
    double dataDepProb = 0.15;
    double earlyExitProb = 0.12;
    double continueProb = 0.10;
    double multiBackedgeProb = 0.10;
    double overlapProb = 0.08;
    double degenerateProb = 0.10;

    /** Probability of a loop-carried memory recurrence (store a[i],
     *  load a[i-1]). The registered synth.* families predating the
     *  data-dependence layer pin this to 0 so their emitted programs —
     *  and every artifact recorded from them — stay byte-stable. */
    double loopCarriedProb = 0.10;

    /** Probability a loop body calls a helper function (when any exist). */
    double callProb = 0.15;

    /** Probability a non-degenerate loop nests children. */
    double nestProb = 0.45;
};

/**
 * Flat scale-stress plan: @p num_loops top-level loops (a seeded mix of
 * small Counted / DataDep / Trip1 shapes, no nesting, no calls) — the
 * substrate of the synth.massive workload, whose point is static-loop
 * *count* (10^5+ distinct loops) rather than structural variety. The
 * planner's budget logic is bypassed deliberately: one pass over main is
 * O(num_loops) dynamic instructions and the caller bounds the dynamic
 * footprint with outer_reps + --max-instrs fuel rather than a budget.
 */
ProgramPlan massivePlan(uint64_t seed, uint64_t num_loops);

/**
 * The generator. One instance is reusable across seeds; all state is
 * per-call. plan() and emit() are deterministic functions of their
 * arguments.
 */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(GenConfig config = {});

    /** Draw the structure vector for @p seed. */
    ProgramPlan plan(uint64_t seed) const;

    /**
     * Emit a plan into a validated Program. @p outer_reps > 1 wraps the
     * whole main sequence in a counted outer loop (used by the synth.*
     * workloads to scale dynamic size without changing the shape mix).
     */
    Program emit(const ProgramPlan &plan_in, const std::string &name,
                 uint64_t outer_reps = 1) const;

    /** plan() + emit() in one call. */
    Program generate(uint64_t seed) const;

    const GenConfig &config() const { return cfg; }

  private:
    struct Planner;
    struct Emitter;

    GenConfig cfg;
};

} // namespace synth
} // namespace loopspec

#endif // LOOPSPEC_SYNTH_PROGRAM_GENERATOR_HH
