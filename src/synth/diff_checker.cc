#include "synth/diff_checker.hh"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <list>
#include <map>
#include <memory>
#include <sstream>

#include "dataspec/conflict_profiler.hh"
#include "dataspec/mem_trace.hh"
#include "loop/loop_detector.hh"
#include "loop/loop_stats.hh"
#include "predict/predictor_meter.hh"
#include "speculation/event_record.hh"
#include "tables/hit_ratio.hh"
#include "trace_io/crc32.hh"
#include "trace_io/replay_source.hh"
#include "trace_io/stream_reader.hh"
#include "trace_io/trace_codec.hh"
#include "tracegen/control_trace.hh"
#include "tracegen/trace_engine.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace loopspec
{
namespace synth
{

bool
LoggedEvent::operator==(const LoggedEvent &o) const
{
    return kind == o.kind && pos == o.pos && execId == o.execId &&
           parent == o.parent && loop == o.loop && a == o.a &&
           depth == o.depth && branchAddr == o.branchAddr &&
           reason == o.reason;
}

std::string
describeEvent(const LoggedEvent &ev)
{
    const char *kind = "?";
    switch (ev.kind) {
      case LoggedEvent::Kind::ExecStart: kind = "ExecStart"; break;
      case LoggedEvent::Kind::IterStart: kind = "IterStart"; break;
      case LoggedEvent::Kind::IterEnd: kind = "IterEnd"; break;
      case LoggedEvent::Kind::ExecEnd: kind = "ExecEnd"; break;
      case LoggedEvent::Kind::SingleIter: kind = "SingleIter"; break;
    }
    return strprintf("%s{pos=%llu exec=%llu loop=0x%x a=%u depth=%u "
                     "b=0x%x parent=%llu reason=%s}",
                     kind, static_cast<unsigned long long>(ev.pos),
                     static_cast<unsigned long long>(ev.execId), ev.loop,
                     ev.a, ev.depth, ev.branchAddr,
                     static_cast<unsigned long long>(ev.parent),
                     execEndReasonName(ev.reason));
}

void
EventLog::onExecStart(const ExecStartEvent &ev)
{
    events.push_back({LoggedEvent::Kind::ExecStart, ev.pos, ev.execId,
                      ev.parentExecId, ev.loop, 0, ev.depth,
                      ev.branchAddr, ExecEndReason::Close});
}

void
EventLog::onIterStart(const IterEvent &ev)
{
    events.push_back({LoggedEvent::Kind::IterStart, ev.pos, ev.execId, 0,
                      ev.loop, ev.iterIndex, ev.depth, 0,
                      ExecEndReason::Close});
}

void
EventLog::onIterEnd(const IterEvent &ev)
{
    events.push_back({LoggedEvent::Kind::IterEnd, ev.pos, ev.execId, 0,
                      ev.loop, ev.iterIndex, ev.depth, 0,
                      ExecEndReason::Close});
}

void
EventLog::onExecEnd(const ExecEndEvent &ev)
{
    events.push_back({LoggedEvent::Kind::ExecEnd, ev.pos, ev.execId, 0,
                      ev.loop, ev.iterCount, 0, 0, ev.reason});
}

void
EventLog::onSingleIterExec(const SingleIterExecEvent &ev)
{
    events.push_back({LoggedEvent::Kind::SingleIter, ev.pos, 0, 0,
                      ev.loop, 0, ev.depth, ev.branchAddr,
                      ExecEndReason::Close});
}

void
EventLog::onTraceDone(uint64_t total_instrs)
{
    totalInstrs = total_instrs;
    done = true;
}

namespace
{

/** Collects the full DynInstr stream from either delivery path. */
class StreamCollector : public TraceObserver
{
  public:
    std::vector<DynInstr> all;
    uint64_t totalInstrs = 0;

    void onInstr(const DynInstr &d) override { all.push_back(d); }

    void
    onInstrBatch(const DynInstr *instrs, size_t count) override
    {
        all.insert(all.end(), instrs, instrs + count);
    }

    void
    onTraceEnd(uint64_t total) override
    {
        totalInstrs = total;
    }
};

/**
 * Hot-plane stream collector (BatchNeed::HotPlanes): verifies the SoA
 * producer contract — no cold planes on a hot-only delivery, a ctrl
 * index listing exactly the kind != None positions — while collecting
 * the planes positionally for comparison against the scalar stream.
 */
class HotStreamCollector : public TraceObserver
{
  public:
    struct Hot
    {
        uint64_t seq;
        uint32_t pc;
        uint32_t target;
        CtrlKind kind;
        bool taken;
    };
    std::vector<Hot> all;
    std::string err;

    void
    onInstr(const DynInstr &d) override
    {
        all.push_back({d.seq, d.pc, d.target, d.kind, d.taken});
    }

    void
    onInstrBatchSoA(const SoaBatch &b) override
    {
        if (b.hasColdPlanes() && err.empty())
            err = "soa: hot-only delivery carries cold planes";
        size_t c = 0;
        for (size_t i = 0; i < b.count; ++i) {
            const bool is_ctrl =
                static_cast<CtrlKind>(b.kind[i]) != CtrlKind::None;
            const bool indexed =
                c < b.numCtrl && b.ctrl[c] == static_cast<uint32_t>(i);
            if (is_ctrl != indexed && err.empty())
                err = strprintf("soa: ctrl index wrong at batch pos %zu",
                                i);
            c += indexed;
            all.push_back({b.seqBase + i, b.pc[i], b.target[i],
                           static_cast<CtrlKind>(b.kind[i]),
                           b.taken[i] != 0});
        }
        if (c != b.numCtrl && err.empty())
            err = "soa: ctrl index count mismatch";
    }

    BatchNeed batchNeed() const override { return BatchNeed::HotPlanes; }
};

/** Field-by-field record comparison; empty string when equal. */
std::string
compareInstr(const DynInstr &a, const DynInstr &b, size_t i)
{
#define LOOPSPEC_DIFF_FIELD(f)                                            \
    if (!(a.f == b.f))                                                    \
        return strprintf("instr %zu: field '%s' differs", i, #f)
    LOOPSPEC_DIFF_FIELD(seq);
    LOOPSPEC_DIFF_FIELD(pc);
    LOOPSPEC_DIFF_FIELD(target);
    LOOPSPEC_DIFF_FIELD(op);
    LOOPSPEC_DIFF_FIELD(kind);
    LOOPSPEC_DIFF_FIELD(taken);
    LOOPSPEC_DIFF_FIELD(numSrc);
    LOOPSPEC_DIFF_FIELD(srcReg[0]);
    LOOPSPEC_DIFF_FIELD(srcReg[1]);
    LOOPSPEC_DIFF_FIELD(srcVal[0]);
    LOOPSPEC_DIFF_FIELD(srcVal[1]);
    LOOPSPEC_DIFF_FIELD(hasDst);
    LOOPSPEC_DIFF_FIELD(dstReg);
    LOOPSPEC_DIFF_FIELD(dstVal);
    LOOPSPEC_DIFF_FIELD(isLoad);
    LOOPSPEC_DIFF_FIELD(isStore);
    LOOPSPEC_DIFF_FIELD(memAddr);
    LOOPSPEC_DIFF_FIELD(memVal);
#undef LOOPSPEC_DIFF_FIELD
    return {};
}

/** Compare two event logs; empty string when identical. */
std::string
compareLogs(const char *what, const EventLog &ref, const EventLog &got)
{
    if (!got.done)
        return strprintf("%s: no trace-done delivered", what);
    if (ref.totalInstrs != got.totalInstrs) {
        return strprintf("%s: totalInstrs %llu vs reference %llu", what,
                         static_cast<unsigned long long>(got.totalInstrs),
                         static_cast<unsigned long long>(ref.totalInstrs));
    }
    size_t n = std::min(ref.events.size(), got.events.size());
    for (size_t i = 0; i < n; ++i) {
        if (ref.events[i] != got.events[i]) {
            return strprintf("%s: event %zu is %s, reference %s", what, i,
                             describeEvent(got.events[i]).c_str(),
                             describeEvent(ref.events[i]).c_str());
        }
    }
    if (ref.events.size() != got.events.size()) {
        return strprintf("%s: %zu events, reference %zu", what,
                         got.events.size(), ref.events.size());
    }
    return {};
}

std::string
compareStats(const char *what, const LoopStatsReport &a,
             const LoopStatsReport &b)
{
#define LOOPSPEC_DIFF_STAT(f)                                             \
    if (!(a.f == b.f))                                                    \
        return strprintf("%s: LoopStats field '%s' differs", what, #f)
    LOOPSPEC_DIFF_STAT(totalInstrs);
    LOOPSPEC_DIFF_STAT(staticLoops);
    LOOPSPEC_DIFF_STAT(totalExecs);
    LOOPSPEC_DIFF_STAT(totalIters);
    LOOPSPEC_DIFF_STAT(singleIterExecs);
    LOOPSPEC_DIFF_STAT(overflowDrops);
    LOOPSPEC_DIFF_STAT(maxNesting);
    LOOPSPEC_DIFF_STAT(itersPerExec);
    LOOPSPEC_DIFF_STAT(instrsPerIter);
    LOOPSPEC_DIFF_STAT(avgNesting);
    LOOPSPEC_DIFF_STAT(loopCoverage);
#undef LOOPSPEC_DIFF_STAT
    return {};
}

/**
 * Independent LRU replacement model (std::list, MRU at front) used to
 * cross-check LoopTable's timestamp-scan victim selection inside the
 * LET/LIT meters.
 */
class RefLru
{
  public:
    explicit RefLru(size_t capacity) : cap(capacity) {}

    /** Payload of @p loop, or nullptr. */
    uint64_t *
    find(uint32_t loop)
    {
        for (auto &it : items) {
            if (it.first == loop)
                return &it.second;
        }
        return nullptr;
    }

    /** Move @p loop to MRU (no-op when absent). */
    void
    use(uint32_t loop)
    {
        for (auto it = items.begin(); it != items.end(); ++it) {
            if (it->first == loop) {
                items.splice(items.begin(), items, it);
                return;
            }
        }
    }

    /** Insert at MRU, evicting the LRU tail when full. */
    void
    insert(uint32_t loop)
    {
        if (items.size() >= cap)
            items.pop_back();
        items.emplace_front(loop, 0);
    }

  private:
    std::list<std::pair<uint32_t, uint64_t>> items;
    size_t cap;
};

/** Reference LET model fed from a captured event log. */
HitRatioResult
refLetResult(const std::vector<LoggedEvent> &events, size_t entries)
{
    RefLru lru(entries);
    HitRatioResult res;
    for (const auto &ev : events) {
        switch (ev.kind) {
          case LoggedEvent::Kind::ExecStart:
            ++res.accesses;
            if (uint64_t *e = lru.find(ev.loop)) {
                if (*e >= 2)
                    ++res.hits;
                lru.use(ev.loop);
            } else {
                lru.insert(ev.loop);
            }
            break;
          case LoggedEvent::Kind::ExecEnd:
            if (ev.reason != ExecEndReason::Overflow) {
                if (uint64_t *e = lru.find(ev.loop))
                    ++*e;
            }
            break;
          case LoggedEvent::Kind::SingleIter:
            if (uint64_t *e = lru.find(ev.loop))
                ++*e;
            break;
          default:
            break;
        }
    }
    return res;
}

/** Reference LIT model fed from a captured event log. */
HitRatioResult
refLitResult(const std::vector<LoggedEvent> &events, size_t entries)
{
    RefLru lru(entries);
    HitRatioResult res;
    for (const auto &ev : events) {
        switch (ev.kind) {
          case LoggedEvent::Kind::ExecStart:
            if (!lru.find(ev.loop))
                lru.insert(ev.loop);
            else
                lru.use(ev.loop);
            break;
          case LoggedEvent::Kind::IterStart:
            ++res.accesses;
            if (uint64_t *e = lru.find(ev.loop)) {
                if (*e >= 2)
                    ++res.hits;
                lru.use(ev.loop);
            }
            break;
          case LoggedEvent::Kind::IterEnd:
            if (uint64_t *e = lru.find(ev.loop))
                ++*e;
            break;
          default:
            break;
        }
    }
    return res;
}

/** The meter battery attached to reference and replay passes. */
struct MeterBank
{
    std::vector<std::unique_ptr<LetHitMeter>> lets;
    std::vector<std::unique_ptr<LitHitMeter>> lits;

    explicit MeterBank(const std::vector<size_t> &sizes)
    {
        for (size_t sz : sizes) {
            lets.push_back(std::make_unique<LetHitMeter>(sz));
            lits.push_back(std::make_unique<LitHitMeter>(sz));
        }
    }

    void
    attach(LoopDetector &det)
    {
        for (auto &m : lets)
            det.addListener(m.get());
        for (auto &m : lits)
            det.addListener(m.get());
    }

    std::vector<LoopListener *>
    listeners()
    {
        std::vector<LoopListener *> out;
        for (auto &m : lets)
            out.push_back(m.get());
        for (auto &m : lits)
            out.push_back(m.get());
        return out;
    }

    std::string
    compare(const char *what, const MeterBank &ref) const
    {
        for (size_t i = 0; i < lets.size(); ++i) {
            const auto &a = ref.lets[i]->result();
            const auto &b = lets[i]->result();
            if (a.accesses != b.accesses || a.hits != b.hits) {
                return strprintf("%s: LET@%zu %llu/%llu vs reference "
                                 "%llu/%llu",
                                 what, lets[i]->numEntries(),
                                 static_cast<unsigned long long>(b.hits),
                                 static_cast<unsigned long long>(
                                     b.accesses),
                                 static_cast<unsigned long long>(a.hits),
                                 static_cast<unsigned long long>(
                                     a.accesses));
            }
            const auto &c = ref.lits[i]->result();
            const auto &d = lits[i]->result();
            if (c.accesses != d.accesses || c.hits != d.hits) {
                return strprintf("%s: LIT@%zu %llu/%llu vs reference "
                                 "%llu/%llu",
                                 what, lits[i]->numEntries(),
                                 static_cast<unsigned long long>(d.hits),
                                 static_cast<unsigned long long>(
                                     d.accesses),
                                 static_cast<unsigned long long>(c.hits),
                                 static_cast<unsigned long long>(
                                     c.accesses));
            }
        }
        return {};
    }
};

/**
 * Detector invariants over the reference event log and the instruction
 * stream (docs/TESTING.md lists these; flushInterval must be 0).
 */
std::string
checkInvariants(const EventLog &log, const std::vector<DynInstr> &stream,
                size_t cls_entries)
{
    uint64_t exec_starts = 0, exec_ends = 0, iter_starts = 0,
             single_iters = 0, iter_count_sum = 0;
    uint64_t last_pos = 0;

    struct ExecState
    {
        bool started = false;
        bool ended = false;
        uint32_t lastIter = 1;
    };
    std::map<uint64_t, ExecState> execs;

    for (size_t i = 0; i < log.events.size(); ++i) {
        const LoggedEvent &ev = log.events[i];
        if (ev.pos < last_pos) {
            return strprintf("invariant: event %zu position goes "
                             "backwards (%s)",
                             i, describeEvent(ev).c_str());
        }
        last_pos = ev.pos;
        if (ev.pos > log.totalInstrs) {
            return strprintf("invariant: event %zu past trace end (%s)",
                             i, describeEvent(ev).c_str());
        }

        switch (ev.kind) {
          case LoggedEvent::Kind::ExecStart: {
            ++exec_starts;
            ExecState &x = execs[ev.execId];
            if (x.started) {
                return strprintf("invariant: exec %llu started twice",
                                 static_cast<unsigned long long>(
                                     ev.execId));
            }
            x.started = true;
            if (ev.depth < 1 || ev.depth > cls_entries) {
                return strprintf("invariant: ExecStart depth %u outside "
                                 "[1,%zu]",
                                 ev.depth, cls_entries);
            }
            break;
          }
          case LoggedEvent::Kind::IterStart: {
            ++iter_starts;
            ExecState &x = execs[ev.execId];
            if (!x.started || x.ended) {
                return strprintf("invariant: IterStart outside exec "
                                 "lifetime (%s)",
                                 describeEvent(ev).c_str());
            }
            if (ev.a != x.lastIter + 1) {
                return strprintf("invariant: exec %llu iteration index "
                                 "jumps %u -> %u",
                                 static_cast<unsigned long long>(
                                     ev.execId),
                                 x.lastIter, ev.a);
            }
            x.lastIter = ev.a;
            break;
          }
          case LoggedEvent::Kind::IterEnd: {
            ExecState &x = execs[ev.execId];
            if (!x.started || x.ended) {
                return strprintf("invariant: IterEnd outside exec "
                                 "lifetime (%s)",
                                 describeEvent(ev).c_str());
            }
            break;
          }
          case LoggedEvent::Kind::ExecEnd: {
            ++exec_ends;
            iter_count_sum += ev.a;
            ExecState &x = execs[ev.execId];
            if (!x.started || x.ended) {
                return strprintf("invariant: ExecEnd outside exec "
                                 "lifetime (%s)",
                                 describeEvent(ev).c_str());
            }
            x.ended = true;
            if (ev.a != x.lastIter) {
                return strprintf("invariant: exec %llu ends with "
                                 "iterCount %u but last iteration was %u",
                                 static_cast<unsigned long long>(
                                     ev.execId),
                                 ev.a, x.lastIter);
            }
            break;
          }
          case LoggedEvent::Kind::SingleIter:
            ++single_iters;
            if (ev.depth < 1 || ev.depth > cls_entries + 1) {
                return strprintf("invariant: SingleIter depth %u outside "
                                 "[1,%zu]",
                                 ev.depth, cls_entries + 1);
            }
            break;
        }
    }

    if (exec_starts != exec_ends) {
        return strprintf("invariant: %llu ExecStarts vs %llu ExecEnds",
                         static_cast<unsigned long long>(exec_starts),
                         static_cast<unsigned long long>(exec_ends));
    }
    for (const auto &[id, x] : execs) {
        if (x.started && !x.ended) {
            return strprintf("invariant: exec %llu never ended",
                             static_cast<unsigned long long>(id));
        }
    }

    // Iteration accounting: iterCount includes the undetectable first
    // iteration, so each execution contributes its IterStarts + 1.
    if (iter_count_sum != iter_starts + exec_ends) {
        return strprintf("invariant: iterCount sum %llu != IterStarts "
                         "%llu + execs %llu",
                         static_cast<unsigned long long>(iter_count_sum),
                         static_cast<unsigned long long>(iter_starts),
                         static_cast<unsigned long long>(exec_ends));
    }

    // Backedge accounting: every retired taken backward branch/jump
    // either detects a new execution or closes an iteration, and each
    // emits exactly one IterStart (never calls or returns).
    uint64_t taken_backward = 0, not_taken_backward = 0;
    for (const auto &d : stream) {
        if (d.kind == CtrlKind::Branch && !d.taken) {
            if (d.target <= d.pc)
                ++not_taken_backward;
            continue;
        }
        bool transfer =
            (d.kind == CtrlKind::Branch && d.taken) ||
            d.kind == CtrlKind::Jump;
        if (transfer && d.target <= d.pc)
            ++taken_backward;
    }
    if (iter_starts != taken_backward) {
        return strprintf("invariant: %llu IterStarts but %llu retired "
                         "taken backward transfers",
                         static_cast<unsigned long long>(iter_starts),
                         static_cast<unsigned long long>(taken_backward));
    }
    if (single_iters > not_taken_backward) {
        return strprintf("invariant: %llu single-iteration execs exceed "
                         "%llu not-taken backward branches",
                         static_cast<unsigned long long>(single_iters),
                         static_cast<unsigned long long>(
                             not_taken_backward));
    }
    return {};
}

// compareRecordings() moved to speculation/event_record.{hh,cc}: the
// same oracle now also backs the sweep engine's --check-replay of
// control-trace-derived recordings.

/** Field-by-field control-trace comparison; empty string when equal. */
std::string
compareControlTraces(const ControlTrace &a, const ControlTrace &b)
{
    if (a.totalInstrs != b.totalInstrs) {
        return strprintf("totalInstrs %llu vs %llu",
                         static_cast<unsigned long long>(b.totalInstrs),
                         static_cast<unsigned long long>(a.totalInstrs));
    }
    if (a.transfers.size() != b.transfers.size()) {
        return strprintf("%zu transfers vs %zu", b.transfers.size(),
                         a.transfers.size());
    }
    for (size_t i = 0; i < a.transfers.size(); ++i) {
        const CtrlTransfer &x = a.transfers[i];
        const CtrlTransfer &y = b.transfers[i];
        if (x.seq != y.seq || x.pc != y.pc || x.target != y.target ||
            x.kind != y.kind || x.taken != y.taken)
            return strprintf("transfer %zu differs", i);
    }
    return {};
}

/** One seeded corruption of @p image; never a byte-identical copy. */
std::vector<uint8_t>
corruptImage(const std::vector<uint8_t> &image, Rng &rng)
{
    std::vector<uint8_t> out = image;
    switch (rng.below(3)) {
      case 0: // flip bits within one byte
        out[rng.below(out.size())] ^=
            static_cast<uint8_t>(1 + rng.below(255));
        break;
      case 1: // truncate anywhere, possibly to nothing
        out.resize(rng.below(out.size()));
        break;
      default: // trailing garbage past the section table
        out.push_back(static_cast<uint8_t>(rng.next()));
        break;
    }
    return out;
}

/**
 * Every seeded corruption of @p image must fail its decoder with a
 * diagnostic — a flipped byte, truncation or extension can never decode
 * cleanly (the format's CRC + exact-size guarantees). The corruption
 * sequence is a pure function of the image bytes, so failures replay.
 */
std::string
requireCorruptionRejected(const char *what,
                          const std::vector<uint8_t> &image,
                          bool is_recording, size_t variants)
{
    Rng rng(crc32(image.data(), image.size()) ^
            (static_cast<uint64_t>(image.size()) << 32));
    for (size_t i = 0; i < variants; ++i) {
        std::vector<uint8_t> bad = corruptImage(image, rng);
        std::string err;
        if (is_recording) {
            LoopEventRecording out;
            err = decodeRecording(bad.data(), bad.size(), &out);
        } else {
            ControlTrace out;
            err = decodeControlTrace(bad.data(), bad.size(), &out);
        }
        if (err.empty()) {
            return strprintf("disk: %s corruption variant %zu decoded "
                             "cleanly (%zu -> %zu bytes)",
                             what, i, image.size(), bad.size());
        }
    }
    return {};
}

/** Unique scratch path for the streaming-replay leg (fuzz campaigns
 *  run many DiffChecker threads in one process). */
std::string
tempImagePath(const char *ext)
{
    static std::atomic<uint64_t> counter{0};
    const char *dir = std::getenv("TMPDIR");
    if (!dir || !*dir)
        dir = "/tmp";
    return strprintf("%s/loopspec_diff_%d_%llu%s", dir,
                     static_cast<int>(getpid()),
                     static_cast<unsigned long long>(
                         counter.fetch_add(1)),
                     ext);
}

/**
 * Disk round-trip oracle (DiffConfig::diskOracle): both encodings of
 * both containers decode back bit-exactly; the out-of-core streaming
 * replay of the written files reproduces the reference event log and
 * re-records the identical recording; and every seeded corruption is
 * rejected with a diagnostic.
 */
std::string
checkDiskRoundTrip(const ControlTrace &ctrace,
                   const LoopEventRecording &recording,
                   const EventLog &ref_log, size_t cls,
                   const DiffConfig &cfg)
{
    for (TraceEncoding enc :
         {TraceEncoding::Raw, TraceEncoding::Varint}) {
        const char *ename =
            enc == TraceEncoding::Raw ? "raw" : "varint";

        // In-memory round trip: encode -> decode -> field compare.
        std::vector<uint8_t> cimg = encodeControlTrace(ctrace, enc);
        ControlTrace cback;
        std::string err =
            decodeControlTrace(cimg.data(), cimg.size(), &cback);
        if (!err.empty()) {
            return strprintf("disk: %s control image rejected by its "
                             "own decoder: %s",
                             ename, err.c_str());
        }
        err = compareControlTraces(ctrace, cback);
        if (!err.empty()) {
            return strprintf("disk: %s control round-trip: %s", ename,
                             err.c_str());
        }

        std::vector<uint8_t> rimg = encodeRecording(recording, enc);
        LoopEventRecording rback;
        err = decodeRecording(rimg.data(), rimg.size(), &rback);
        if (!err.empty()) {
            return strprintf("disk: %s recording image rejected by its "
                             "own decoder: %s",
                             ename, err.c_str());
        }
        err = compareRecordings(recording, rback);
        if (!err.empty()) {
            return strprintf("disk: %s recording round-trip: %s", ename,
                             err.c_str());
        }

        // Corruption corpus: flips, truncations, extensions.
        err = requireCorruptionRejected(
            strprintf("%s control", ename).c_str(), cimg, false,
            cfg.corruptionsPerImage);
        if (!err.empty())
            return err;
        err = requireCorruptionRejected(
            strprintf("%s recording", ename).c_str(), rimg, true,
            cfg.corruptionsPerImage);
        if (!err.empty())
            return err;

        // Out-of-core streaming replay from a real file. Tiny chunks
        // force records to split across every chunk boundary; the
        // replay batch stays at its default so the batched event
        // positions match the in-memory reference bit-for-bit.
        StreamConfig scfg;
        scfg.chunkBytes = 512;

        std::string cpath = tempImagePath(kControlTraceExt);
        writeFileBytes(cpath, cimg);
        EventLog log_s;
        {
            std::unique_ptr<TraceFileStreamer> streamer =
                TraceFileStreamer::open(cpath, scfg, &err);
            if (!streamer) {
                std::remove(cpath.c_str());
                return strprintf("disk: %s control stream open: %s",
                                 ename, err.c_str());
            }
            LoopDetector det({cls});
            det.addListener(&log_s);
            err = streamer->replayControl(det);
        }
        std::remove(cpath.c_str());
        if (!err.empty()) {
            return strprintf("disk: %s control stream replay: %s",
                             ename, err.c_str());
        }
        err = compareLogs(
            strprintf("disk %s stream-replay", ename).c_str(), ref_log,
            log_s);
        if (!err.empty())
            return err;

        std::string rpath = tempImagePath(kRecordingExt);
        writeFileBytes(rpath, rimg);
        EventLog log_e;
        LoopEventRecorder rerec;
        {
            std::unique_ptr<TraceFileStreamer> streamer =
                TraceFileStreamer::open(rpath, scfg, &err);
            if (!streamer) {
                std::remove(rpath.c_str());
                return strprintf("disk: %s recording stream open: %s",
                                 ename, err.c_str());
            }
            err = streamer->replayEvents({&log_e, &rerec});
        }
        std::remove(rpath.c_str());
        if (!err.empty()) {
            return strprintf("disk: %s recording stream replay: %s",
                             ename, err.c_str());
        }
        err = compareLogs(
            strprintf("disk %s event-stream", ename).c_str(), ref_log,
            log_e);
        if (!err.empty())
            return err;
        err = compareRecordings(recording, rerec.take());
        if (!err.empty()) {
            return strprintf("disk: %s event-stream re-recording: %s",
                             ename, err.c_str());
        }
    }
    return {};
}

/**
 * Predictor-state invariant: the branch-predictor baselines are pure
 * functions of the retired conditional-branch stream, so a scalar-fed
 * meter, an odd-batch-fed meter and a control-trace-replay-fed meter
 * must agree on every lookup/hit count AND end in bit-identical table
 * state (stateHash covers every counter and history register).
 */
std::string
checkPredictorState(const std::vector<std::string> &specs,
                    const std::vector<DynInstr> &stream,
                    uint64_t total_instrs, const ControlTrace &ctrace)
{
    if (specs.empty())
        return {};
    std::vector<PredictorConfig> configs;
    for (const std::string &s : specs)
        configs.push_back(parsePredictorSpec(s));

    PredictorMeter scalar_fed(configs);
    for (const DynInstr &d : stream)
        scalar_fed.onInstr(d);

    PredictorMeter batch_fed(configs);
    const size_t chunk = 777; // deliberately odd span boundaries
    for (size_t i = 0; i < stream.size(); i += chunk) {
        size_t n = std::min(chunk, stream.size() - i);
        batch_fed.onInstrBatch(stream.data() + i, n);
    }

    PredictorMeter replay_fed(configs);
    replayControlTrace(ctrace, replay_fed);
    (void)total_instrs;

    const auto ref = scalar_fed.results();
    for (const auto &[what, meter] :
         {std::pair<const char *, const PredictorMeter *>{
              "odd-batch", &batch_fed},
          {"ctrace-replay", &replay_fed}}) {
        const auto got = meter->results();
        for (size_t i = 0; i < ref.size(); ++i) {
            if (got[i].lookups != ref[i].lookups ||
                got[i].hits != ref[i].hits) {
                return strprintf(
                    "predictor %s: %s-fed meter scores %llu/%llu vs "
                    "scalar %llu/%llu",
                    predictorName(ref[i].config).c_str(), what,
                    static_cast<unsigned long long>(got[i].hits),
                    static_cast<unsigned long long>(got[i].lookups),
                    static_cast<unsigned long long>(ref[i].hits),
                    static_cast<unsigned long long>(ref[i].lookups));
            }
            if (got[i].stateHash != ref[i].stateHash) {
                return strprintf(
                    "predictor %s: %s-fed table state %016llx vs "
                    "scalar %016llx",
                    predictorName(ref[i].config).c_str(), what,
                    static_cast<unsigned long long>(got[i].stateHash),
                    static_cast<unsigned long long>(ref[i].stateHash));
            }
        }
    }
    return {};
}

} // namespace

DiffResult
diffProgram(const Program &prog, const DiffConfig &cfg)
{
    EngineConfig ecfg;
    ecfg.maxInstrs = cfg.maxInstrs;

    // --- 1. DynInstr stream: step() (reference) vs run() -------------
    StreamCollector scalar;
    {
        TraceEngine engine(prog, ecfg);
        engine.addObserver(&scalar);
        DynInstr d;
        while (engine.step(d)) {
        }
    }

    StreamCollector batched;
    ControlTraceRecorder ctrace_rec;
    MemTraceRecorder mem_rec_batched;
    {
        TraceEngine engine(prog, ecfg);
        engine.addObserver(&batched);
        engine.addObserver(&ctrace_rec);
        engine.addObserver(&mem_rec_batched);
        engine.run();
    }
    if (scalar.all.size() != batched.all.size()) {
        return DiffResult::fail(strprintf(
            "stream: scalar retires %zu instrs, batched %zu",
            scalar.all.size(), batched.all.size()));
    }
    for (size_t i = 0; i < scalar.all.size(); ++i) {
        std::string err = compareInstr(scalar.all[i], batched.all[i], i);
        if (!err.empty())
            return DiffResult::fail("stream: " + err);
    }
    ControlTrace ctrace = ctrace_rec.take();

    // --- 1a. SoA deliveries vs the reference stream ------------------
    // Hot planes (the default fast path) must agree field-for-field
    // with the scalar records, and the direct AoS fill (soaBatches =
    // false, the non-GNU fallback) must stay bit-identical too. The
    // stage-1 batched collector above already covered the third
    // delivery form: cold planes materialized by the default shim.
    {
        HotStreamCollector hot;
        {
            TraceEngine engine(prog, ecfg);
            engine.addObserver(&hot);
            engine.run();
        }
        if (!hot.err.empty())
            return DiffResult::fail(hot.err);
        if (hot.all.size() != scalar.all.size()) {
            return DiffResult::fail(strprintf(
                "soa: hot planes carry %zu instrs, scalar %zu",
                hot.all.size(), scalar.all.size()));
        }
        for (size_t i = 0; i < scalar.all.size(); ++i) {
            const DynInstr &a = scalar.all[i];
            const HotStreamCollector::Hot &b = hot.all[i];
            if (a.seq != b.seq || a.pc != b.pc || a.target != b.target ||
                a.kind != b.kind || a.taken != b.taken) {
                return DiffResult::fail(strprintf(
                    "soa: hot planes diverge from scalar at instr %zu",
                    i));
            }
        }

        StreamCollector direct;
        {
            EngineConfig acfg = ecfg;
            acfg.soaBatches = false;
            TraceEngine engine(prog, acfg);
            engine.addObserver(&direct);
            engine.run();
        }
        if (direct.all.size() != scalar.all.size()) {
            return DiffResult::fail(strprintf(
                "soa: direct AoS fill retires %zu instrs, scalar %zu",
                direct.all.size(), scalar.all.size()));
        }
        for (size_t i = 0; i < scalar.all.size(); ++i) {
            std::string err =
                compareInstr(scalar.all[i], direct.all[i], i);
            if (!err.empty())
                return DiffResult::fail("soa direct-aos: " + err);
        }
    }

    // --- 1b. Predictor-state invariant (CLS-independent) -------------
    {
        std::string err =
            checkPredictorState(cfg.predictorSpecs, scalar.all,
                                scalar.totalInstrs, ctrace);
        if (!err.empty())
            return DiffResult::fail(err);
    }

    // --- 1c. Memory-access sidecar: scalar vs batched delivery -------
    // The sidecar is CLS-independent; both delivery paths must record
    // the identical (seq, addr, pc, isStore) sequence.
    MemTraceRecorder mem_rec_scalar;
    for (const DynInstr &d : scalar.all)
        mem_rec_scalar.onInstr(d);
    mem_rec_scalar.onTraceEnd(scalar.totalInstrs);
    const MemAccessTrace mem_scalar = mem_rec_scalar.take();
    const MemAccessTrace mem_batched = mem_rec_batched.take();
    if (mem_scalar.stateHash() != mem_batched.stateHash()) {
        return DiffResult::fail(strprintf(
            "memtrace: batched sidecar hash %016llx vs scalar %016llx "
            "(%zu vs %zu accesses)",
            static_cast<unsigned long long>(mem_batched.stateHash()),
            static_cast<unsigned long long>(mem_scalar.stateHash()),
            mem_batched.accesses.size(), mem_scalar.accesses.size()));
    }

    // --- 2. Per-CLS-size detector pipeline comparisons ---------------
    for (size_t cls : cfg.clsSizes) {
        std::string tag = strprintf("cls=%zu", cls);

        // (A) Reference: scalar-fed detector.
        EventLog log_a;
        LoopStats stats_a;
        MeterBank meters_a(cfg.meterSizes);
        LoopEventRecorder recorder_a;
        {
            LoopDetector det({cls});
            det.addListener(&log_a);
            det.addListener(&stats_a);
            meters_a.attach(det);
            det.addListener(&recorder_a);
            for (const auto &d : scalar.all)
                det.onInstr(d);
            det.onTraceEnd(scalar.totalInstrs);
        }
        LoopEventRecording recording = recorder_a.take();

        // (B) Engine-batched: a real run() with the detector attached.
        EventLog log_b;
        LoopStats stats_b;
        LoopEventRecorder recorder_b;
        {
            TraceEngine engine(prog, ecfg);
            LoopDetector det({cls});
            det.addListener(&log_b);
            det.addListener(&stats_b);
            det.addListener(&recorder_b);
            engine.addObserver(&det);
            engine.run();
        }
        std::string err =
            compareLogs((tag + " engine-batched").c_str(), log_a, log_b);
        if (err.empty())
            err = compareStats((tag + " engine-batched").c_str(),
                               stats_a.report(), stats_b.report());
        if (!err.empty())
            return DiffResult::fail(err);

        // (B2) Direct AoS batches (soaBatches = false): the detector's
        // record walk must emit the identical events as its hot-plane
        // walk in (B).
        EventLog log_b2;
        {
            EngineConfig acfg = ecfg;
            acfg.soaBatches = false;
            TraceEngine engine(prog, acfg);
            LoopDetector det({cls});
            det.addListener(&log_b2);
            engine.addObserver(&det);
            engine.run();
        }
        err = compareLogs((tag + " aos-batched").c_str(), log_a, log_b2);
        if (!err.empty())
            return DiffResult::fail(err);

        // (B1) Odd-sized manual batches stress span boundaries.
        EventLog log_b1;
        {
            LoopDetector det({cls});
            det.addListener(&log_b1);
            const size_t chunk = 999;
            for (size_t i = 0; i < scalar.all.size(); i += chunk) {
                size_t n = std::min(chunk, scalar.all.size() - i);
                det.onInstrBatch(scalar.all.data() + i, n);
            }
            det.onTraceEnd(scalar.totalInstrs);
        }
        err = compareLogs((tag + " manual-batched").c_str(), log_a,
                          log_b1);
        if (!err.empty())
            return DiffResult::fail(err);

        // (C) Control-trace replay (the injection point).
        size_t replay_cls =
            cfg.injectClsOffByOne && cls > 1 ? cls - 1 : cls;
        EventLog log_c;
        LoopStats stats_c;
        LoopEventRecorder recorder_c;
        {
            LoopDetector det({replay_cls});
            det.addListener(&log_c);
            det.addListener(&stats_c);
            det.addListener(&recorder_c);
            replayControlTrace(ctrace, det);
        }
        err = compareLogs((tag + " ctrace-replay").c_str(), log_a, log_c);
        if (err.empty())
            err = compareStats((tag + " ctrace-replay").c_str(),
                               stats_a.report(), stats_c.report());
        if (!err.empty())
            return DiffResult::fail(err);

        // (C2) Interleaved replay: two chunk-scheduled sources over the
        // same control trace must each reproduce the reference events
        // (interleaving is a pure scheduling change).
        EventLog log_c2a, log_c2b;
        {
            LoopDetector det_a({cls}), det_b({cls});
            det_a.addListener(&log_c2a);
            det_b.addListener(&log_c2b);
            ControlTraceSource src_a(ctrace, det_a);
            ControlTraceSource src_b(ctrace, det_b);
            std::string ierr = interleaveReplay({&src_a, &src_b}, 1000);
            if (!ierr.empty())
                return DiffResult::fail(tag + " interleaved: " + ierr);
        }
        err = compareLogs((tag + " interleaved-a").c_str(), log_a,
                          log_c2a);
        if (err.empty())
            err = compareLogs((tag + " interleaved-b").c_str(), log_a,
                              log_c2b);
        if (!err.empty())
            return DiffResult::fail(err);

        // (D) Loop-event replay: events, meters and a re-recording.
        EventLog log_d;
        MeterBank meters_d(cfg.meterSizes);
        LoopEventRecorder recorder_d;
        {
            std::vector<LoopListener *> ls = meters_d.listeners();
            ls.push_back(&log_d);
            ls.push_back(&recorder_d);
            replayLoopEvents(recording, ls);
        }
        err = compareLogs((tag + " event-replay").c_str(), log_a, log_d);
        if (err.empty())
            err = meters_d.compare((tag + " event-replay").c_str(),
                                   meters_a);
        if (err.empty())
            err = compareRecordings(recording, recorder_d.take());
        if (!err.empty())
            return DiffResult::fail(tag + ": " + err);

        // (D2) Disk round-trip + corruption-rejection oracle. The
        // container codecs are CLS-independent, so one pass (at the
        // first CLS size) per program keeps fuzz throughput.
        if (cfg.diskOracle && cls == cfg.clsSizes.front()) {
            err = checkDiskRoundTrip(ctrace, recording, log_a, cls, cfg);
            if (!err.empty())
                return DiffResult::fail(err);
        }

        // (G) Conflict-profile equivalence (docs/DATASPEC.md): the
        // profiler is a pure function of (recording, sidecar), so the
        // scalar-fed, engine-batched and control-trace-replay
        // recordings — paired with either sidecar delivery — must walk
        // to identical conflict sets, violation sequences and hashes.
        // The replay leg is the conflict injection point.
        {
            const ConflictProfile prof_a =
                profileConflicts(recording, mem_scalar);
            const ConflictProfile prof_b =
                profileConflicts(recorder_b.take(), mem_batched);
            ConflictConfig ccfg;
            ccfg.injectIterOffByOne = cfg.injectConflictIterOffByOne;
            const ConflictProfile prof_c =
                profileConflicts(recorder_c.take(), mem_scalar, ccfg);
            err = compareConflictProfiles(prof_a, prof_b);
            if (!err.empty()) {
                return DiffResult::fail(tag +
                                        " conflicts engine-batched: " +
                                        err);
            }
            err = compareConflictProfiles(prof_a, prof_c);
            if (!err.empty()) {
                return DiffResult::fail(
                    tag + " conflicts ctrace-replay: " + err);
            }
            if (prof_a.stateHash() != prof_b.stateHash() ||
                prof_a.stateHash() != prof_c.stateHash()) {
                return DiffResult::fail(strprintf(
                    "%s conflicts: state hashes diverge "
                    "(scalar %016llx batched %016llx replay %016llx)",
                    tag.c_str(),
                    static_cast<unsigned long long>(prof_a.stateHash()),
                    static_cast<unsigned long long>(prof_b.stateHash()),
                    static_cast<unsigned long long>(
                        prof_c.stateHash())));
            }
        }

        // (E) Detector invariants on the reference log.
        err = checkInvariants(log_a, scalar.all, cls);
        if (!err.empty())
            return DiffResult::fail(tag + " " + err);

        // (F) Meters vs independent LRU reference models.
        for (size_t i = 0; i < cfg.meterSizes.size(); ++i) {
            HitRatioResult ref = refLetResult(log_a.events,
                                              cfg.meterSizes[i]);
            const HitRatioResult &got = meters_a.lets[i]->result();
            if (ref.accesses != got.accesses || ref.hits != got.hits) {
                return DiffResult::fail(strprintf(
                    "%s LET@%zu: meter %llu/%llu vs LRU model %llu/%llu",
                    tag.c_str(), cfg.meterSizes[i],
                    static_cast<unsigned long long>(got.hits),
                    static_cast<unsigned long long>(got.accesses),
                    static_cast<unsigned long long>(ref.hits),
                    static_cast<unsigned long long>(ref.accesses)));
            }
            ref = refLitResult(log_a.events, cfg.meterSizes[i]);
            const HitRatioResult &lgot = meters_a.lits[i]->result();
            if (ref.accesses != lgot.accesses || ref.hits != lgot.hits) {
                return DiffResult::fail(strprintf(
                    "%s LIT@%zu: meter %llu/%llu vs LRU model %llu/%llu",
                    tag.c_str(), cfg.meterSizes[i],
                    static_cast<unsigned long long>(lgot.hits),
                    static_cast<unsigned long long>(lgot.accesses),
                    static_cast<unsigned long long>(ref.hits),
                    static_cast<unsigned long long>(ref.accesses)));
            }
        }
    }

    return {};
}

} // namespace synth
} // namespace loopspec
