#include "synth/program_generator.hh"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>

#include "program/builder.hh"
#include "util/logging.hh"
#include "workloads/kernels.hh"

namespace loopspec
{
namespace synth
{

namespace
{

// Register conventions of emitted programs. Main-block loops at nest
// depth d use r(1+2d)/r(2+2d) as index/bound, so depth is capped at 8
// (r1..r16); the outer-reps wrapper uses the depth-8 pair (r17/r18);
// helper-function loops use r21..r24; r27/r28 are never-live-across-a-
// loop scratch; r31 is the LCG state (kernels::lcgReg).
constexpr unsigned mainDepthCap = 8;
constexpr unsigned funcDepthBase = 10;
constexpr unsigned funcDepthCap = 2;
constexpr Reg scratchA{27};
constexpr Reg scratchB{28};

// Data-memory slot base of the LoopCarried recurrence array. Every
// LoopCarried loop shares it (deliberately: aliasing between nested
// instances is more conflict-profile coverage, not less); with idx in
// [0, trip) the touched range [carriedBase - 1, carriedBase + trip)
// stays inside the 64-word data region the emitter reserves.
constexpr int64_t carriedBase = 9;

Reg
idxRegAt(unsigned depth)
{
    if (depth >= funcDepthBase)
        return Reg{static_cast<uint8_t>(21 + 2 * (depth - funcDepthBase))};
    return Reg{static_cast<uint8_t>(1 + 2 * depth)};
}

Reg
bndRegAt(unsigned depth)
{
    if (depth >= funcDepthBase)
        return Reg{static_cast<uint8_t>(22 + 2 * (depth - funcDepthBase))};
    return Reg{static_cast<uint8_t>(2 + 2 * depth)};
}

std::string
funcName(int idx)
{
    return "f" + std::to_string(idx);
}

/** Effective trip count of one node for cost estimation. */
uint64_t
effTrips(const LoopNode &n)
{
    switch (n.shape) {
      case LoopShape::SelfBranch:
      case LoopShape::Trip1:
        return 1;
      case LoopShape::DataDep:
        return static_cast<uint64_t>(n.trip) +
               static_cast<uint64_t>(n.mask) / 2;
      case LoopShape::Overlapped:
        return 2 * static_cast<uint64_t>(n.trip);
      default:
        return static_cast<uint64_t>(n.trip);
    }
}

/**
 * Per-entry dynamic-instruction estimate of one node *excluding* its
 * children: the planner charges each node's own cost exactly once, at
 * that node's entry multiplicity (children are charged at theirs), so
 * the sum over all nodes estimates the whole trace. @p func_costs holds
 * the per-call cost of each already-planned helper function (one call
 * per body iteration).
 */
uint64_t
ownCost(const LoopNode &n, const std::vector<uint64_t> &func_costs)
{
    if (n.shape == LoopShape::SelfBranch)
        return 2;
    uint64_t body = n.pad + 6u;
    if (n.shape == LoopShape::LoopCarried)
        body += 3; // the recurrence's ld/addi/st
    if (n.callFunc >= 0 &&
        static_cast<size_t>(n.callFunc) < func_costs.size())
        body += func_costs[static_cast<size_t>(n.callFunc)];
    return 4 + effTrips(n) * body;
}

/** Whole-subtree per-entry cost (used to price helper functions). */
uint64_t
subtreeCost(const LoopNode &n, const std::vector<uint64_t> &func_costs)
{
    uint64_t total = ownCost(n, func_costs);
    for (const auto &c : n.children)
        total += effTrips(n) * subtreeCost(c, func_costs);
    return total;
}

} // namespace

const char *
loopShapeName(LoopShape shape)
{
    switch (shape) {
      case LoopShape::Counted: return "counted";
      case LoopShape::DataDep: return "datadep";
      case LoopShape::EarlyExit: return "earlyexit";
      case LoopShape::WhileContinue: return "whilecontinue";
      case LoopShape::MultiBackedge: return "multibackedge";
      case LoopShape::Overlapped: return "overlapped";
      case LoopShape::SelfBranch: return "selfbranch";
      case LoopShape::Trip1: return "trip1";
      case LoopShape::LoopCarried: return "loopcarried";
      default: panic("bad LoopShape");
    }
}

LoopShape
loopShapeFromName(const std::string &name)
{
    for (unsigned s = 0; s < static_cast<unsigned>(LoopShape::NumShapes);
         ++s) {
        if (name == loopShapeName(static_cast<LoopShape>(s)))
            return static_cast<LoopShape>(s);
    }
    fatal("unknown loop shape '%s'", name.c_str());
}

uint64_t
LoopNode::loopCount() const
{
    uint64_t n = shape == LoopShape::Overlapped ? 2 : 1;
    for (const auto &c : children)
        n += c.loopCount();
    return n;
}

uint64_t
ProgramPlan::loopCount() const
{
    uint64_t n = 0;
    for (const auto &node : main)
        n += node.loopCount();
    for (const auto &fn : funcs)
        for (const auto &node : fn)
            n += node.loopCount();
    return n;
}

// --------------------------------------------------------------- planner

struct ProgramGenerator::Planner
{
    const GenConfig &cfg;
    Rng rng;
    uint64_t budget;
    /** Per-call dynamic cost of each helper function (priced after the
     *  function bodies are drawn, before main). */
    std::vector<uint64_t> funcCosts;

    Planner(const GenConfig &config, uint64_t seed)
        : cfg(config), rng(seed), budget(config.dynInstrBudget)
    {
    }

    LoopShape
    drawShape(unsigned depth, bool in_func)
    {
        double p = rng.uniform();
        if ((p -= cfg.degenerateProb) < 0)
            return rng.chance(0.5) ? LoopShape::SelfBranch
                                   : LoopShape::Trip1;
        if ((p -= cfg.dataDepProb) < 0)
            return LoopShape::DataDep;
        if ((p -= cfg.earlyExitProb) < 0)
            return LoopShape::EarlyExit;
        if ((p -= cfg.continueProb) < 0)
            return LoopShape::WhileContinue;
        if ((p -= cfg.multiBackedgeProb) < 0)
            return LoopShape::MultiBackedge;
        if ((p -= cfg.loopCarriedProb) < 0)
            return LoopShape::LoopCarried;
        // Overlapped consumes two depth levels and stays a leaf.
        if ((p -= cfg.overlapProb) < 0 && !in_func &&
            depth + 1 < cfg.maxDepth) {
            return LoopShape::Overlapped;
        }
        return LoopShape::Counted;
    }

    LoopNode
    drawNode(unsigned depth, uint64_t entries, bool in_func,
             unsigned num_funcs)
    {
        LoopNode n;
        n.shape = drawShape(depth, in_func);
        n.pad = static_cast<uint8_t>(rng.below(4));
        switch (n.shape) {
          case LoopShape::SelfBranch:
            n.trip = 1;
            return n;
          case LoopShape::Trip1:
            n.trip = 1;
            break;
          default:
            n.trip = 2 + rng.range(0, cfg.maxTrip > 2 ? cfg.maxTrip - 2
                                                      : 0);
            break;
        }
        if (n.shape == LoopShape::DataDep)
            n.mask = rng.chance(0.5) ? 3 : 7;

        if (!in_func && num_funcs > 0 && rng.chance(cfg.callProb)) {
            n.callFunc =
                static_cast<int8_t>(rng.below(num_funcs));
            n.callIndirect = rng.chance(0.3);
        }

        // A node too expensive even without children degenerates before
        // any child is drawn (deep multiplicative nests bottom out here).
        if (entries * ownCost(n, funcCosts) > budget) {
            n.shape = LoopShape::Trip1;
            n.trip = 1;
            n.mask = 0;
            n.callFunc = -1;
            return n;
        }

        bool can_nest = n.shape != LoopShape::Overlapped &&
                        n.shape != LoopShape::SelfBranch &&
                        n.shape != LoopShape::Trip1;
        // Function blocks run at absolute depths funcDepthBase..; their
        // cap is relative to that base (funcDepthCap levels).
        unsigned depth_cap =
            in_func ? funcDepthBase + funcDepthCap
                    : std::min(cfg.maxDepth, mainDepthCap);
        if (can_nest && depth + 1 < depth_cap && rng.chance(cfg.nestProb)) {
            uint64_t child_entries =
                entries * static_cast<uint64_t>(n.trip);
            n.children = drawBlock(depth + 1, child_entries, in_func,
                                   num_funcs);
        }
        return n;
    }

    std::vector<LoopNode>
    drawBlock(unsigned depth, uint64_t entries, bool in_func,
              unsigned num_funcs, bool top = false)
    {
        std::vector<LoopNode> block;
        // Nested blocks are small (1..maxLoopsPerBlock); the top-level
        // sequence keeps appending until the dynamic budget is spent, so
        // generated traces actually reach fuzz-worthy sizes.
        unsigned count = 1 + static_cast<unsigned>(
                                 rng.below(cfg.maxLoopsPerBlock));
        unsigned cap = top ? 64 : count;
        for (unsigned i = 0; i < cap; ++i) {
            if (budget == 0)
                break;
            if (top && i >= count && budget < cfg.dynInstrBudget / 10)
                break;
            LoopNode n = drawNode(depth, entries, in_func, num_funcs);
            uint64_t cost = entries * ownCost(n, funcCosts);
            budget = cost >= budget ? 0 : budget - cost;
            block.push_back(std::move(n));
        }
        return block;
    }
};

ProgramGenerator::ProgramGenerator(GenConfig config) : cfg(config)
{
    LOOPSPEC_ASSERT(cfg.maxDepth >= 1 && cfg.maxDepth <= mainDepthCap,
                    "maxDepth out of range");
    LOOPSPEC_ASSERT(cfg.maxFunctions <= 4, "too many helper functions");
    LOOPSPEC_ASSERT(cfg.maxTrip >= 2, "maxTrip too small");
}

ProgramPlan
ProgramGenerator::plan(uint64_t seed) const
{
    Planner p(cfg, seed);
    ProgramPlan out;
    out.seed = seed;

    unsigned num_funcs =
        cfg.maxFunctions
            ? static_cast<unsigned>(p.rng.below(cfg.maxFunctions + 1))
            : 0;
    // Functions are budgeted small: they can be called from deeply
    // nested sites, so each gets a flat slice of the budget up front.
    for (unsigned f = 0; f < num_funcs; ++f) {
        uint64_t saved = p.budget;
        p.budget = std::min<uint64_t>(saved, 400);
        out.funcs.push_back(p.drawBlock(funcDepthBase, 1, true, 0));
        p.budget = saved > 400 ? saved - 400 : 0;
        // Price the finished function so main's call sites are charged
        // what a call actually costs (call + body + ret).
        uint64_t cost = 2;
        for (const auto &n : out.funcs.back())
            cost += subtreeCost(n, {});
        p.funcCosts.push_back(cost);
    }
    out.main = p.drawBlock(0, 1, false, num_funcs, true);
    return out;
}

ProgramPlan
massivePlan(uint64_t seed, uint64_t num_loops)
{
    Rng rng(seed);
    ProgramPlan out;
    out.seed = seed;
    out.main.reserve(num_loops);
    for (uint64_t i = 0; i < num_loops; ++i) {
        LoopNode n;
        double p = rng.uniform();
        if (p < 0.10) {
            n.shape = LoopShape::Trip1;
            n.trip = 1;
        } else if (p < 0.25) {
            n.shape = LoopShape::DataDep;
            n.trip = 2;
            n.mask = rng.chance(0.5) ? 3 : 7;
        } else {
            n.shape = LoopShape::Counted;
            n.trip = 2 + static_cast<int64_t>(rng.below(3));
        }
        n.pad = static_cast<uint8_t>(rng.below(3));
        out.main.push_back(std::move(n));
    }
    return out;
}

// --------------------------------------------------------------- emitter

struct ProgramGenerator::Emitter
{
    ProgramBuilder &b;
    bool inFunction = false;

    void
    emitPad(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i) {
            if (i % 2)
                b.addi(scratchA, scratchA, 1);
            else
                b.nop();
        }
    }

    void
    emitCall(const LoopNode &n)
    {
        if (n.callFunc < 0)
            return;
        if (n.callIndirect) {
            b.liFunc(scratchA, funcName(n.callFunc));
            b.callInd(scratchA);
        } else {
            b.call(funcName(n.callFunc));
        }
    }

    void
    emitBody(const LoopNode &n, unsigned depth)
    {
        emitPad(n.pad);
        emitCall(n);
        for (const auto &c : n.children)
            emitNode(c, depth + 1);
    }

    void
    emitNode(const LoopNode &n, unsigned depth)
    {
        Reg idx = idxRegAt(depth);
        Reg bnd = bndRegAt(depth);
        switch (n.shape) {
          case LoopShape::SelfBranch: {
            // A never-taken backward branch to itself: the tightest
            // possible single-iteration execution (target == pc).
            b.nop();
            Label self = b.here();
            b.bne(regs::r0, regs::r0, self);
            return;
          }
          case LoopShape::Counted:
          case LoopShape::Trip1:
            b.li(idx, 0);
            b.li(bnd, n.trip);
            b.countedLoop(idx, bnd,
                          [&](const LoopCtx &) { emitBody(n, depth); });
            return;
          case LoopShape::DataDep:
            // Trip count drawn per entry: trip + (lcg & mask).
            kernels::emitLcgStep(b, scratchB);
            b.andi(scratchB, scratchB, n.mask ? n.mask : 3);
            b.addi(bnd, scratchB, n.trip);
            b.li(idx, 0);
            b.countedLoop(idx, bnd,
                          [&](const LoopCtx &) { emitBody(n, depth); });
            return;
          case LoopShape::LoopCarried:
            // Loop-carried recurrence through data memory: iteration i
            // stores a[i] and loads a[i - 1], so every iteration after
            // the first consumes the previous iteration's store — a
            // distance-1 cross-iteration RAW the conflict profiler
            // (docs/DATASPEC.md) must attribute to this loop on every
            // pipeline.
            b.li(idx, 0);
            b.li(bnd, n.trip);
            b.countedLoop(idx, bnd, [&](const LoopCtx &) {
                b.ld(scratchB, idx, carriedBase - 1);
                b.addi(scratchB, scratchB, 1);
                b.st(scratchB, idx, carriedBase);
                emitBody(n, depth);
            });
            return;
          case LoopShape::EarlyExit:
            b.li(idx, 0);
            b.li(bnd, n.trip);
            b.countedLoop(idx, bnd, [&](const LoopCtx &ctx) {
                emitPad(n.pad);
                kernels::emitLcgStep(b, scratchB);
                b.andi(scratchB, scratchB, 7);
                if (inFunction) {
                    // Early *return* from inside the loop: exercises the
                    // detector's return rule on a live entry.
                    Label stay = b.newLabel();
                    b.bne(scratchB, regs::r0, stay);
                    b.ret();
                    b.bind(stay);
                } else {
                    // Data-dependent break (~1/8 per iteration).
                    b.beq(scratchB, regs::r0, ctx.exit);
                }
                emitCall(n);
                for (const auto &c : n.children)
                    emitNode(c, depth + 1);
            });
            return;
          case LoopShape::WhileContinue: {
            // While-form loop whose body can jump back to the head from
            // two distinct addresses (continue + close): a multi-backedge
            // loop with B raised to the highest backward transfer.
            b.li(idx, 0);
            b.li(bnd, n.trip);
            Label exit = b.newLabel();
            Label head = b.here();
            b.bge(idx, bnd, exit);
            b.addi(idx, idx, 1);
            emitBody(n, depth);
            b.andi(scratchA, idx, 1);
            b.bne(scratchA, regs::r0, head); // continue (odd idx)
            b.nop();
            b.jmp(head); // close
            b.bind(exit);
            return;
          }
          case LoopShape::MultiBackedge: {
            // Do-while closed by two different backward transfers.
            b.li(idx, 0);
            b.li(bnd, n.trip);
            Label exit = b.newLabel();
            Label head = b.here();
            emitBody(n, depth);
            b.addi(idx, idx, 1);
            b.bge(idx, bnd, exit);
            b.andi(scratchA, idx, 1);
            b.bne(scratchA, regs::r0, head);
            b.jmp(head);
            b.bind(exit);
            return;
          }
          case LoopShape::Overlapped: {
            // Rotated loop pair T1 < T2 <= B1 < B2: the bodies overlap,
            // so closing one from inside the other exercises the exit
            // rule on middle CLS entries.
            Reg idx2 = idxRegAt(depth + 1);
            Reg bnd2 = bndRegAt(depth + 1);
            b.li(idx, 0);
            b.li(bnd, n.trip);
            b.li(idx2, 0);
            b.li(bnd2, n.trip + 1);
            Label h1 = b.here();
            b.addi(idx, idx, 1);
            Label h2 = b.here();
            b.addi(idx2, idx2, 1);
            emitPad(n.pad);
            b.blt(idx, bnd, h1);
            b.blt(idx2, bnd2, h2);
            return;
          }
          default:
            panic("bad LoopShape");
        }
    }
};

Program
ProgramGenerator::emit(const ProgramPlan &plan_in, const std::string &name,
                       uint64_t outer_reps) const
{
    ProgramBuilder b(name, 64);
    Emitter em{b};

    b.beginFunction("main");
    b.li(kernels::lcgReg, static_cast<int64_t>(plan_in.seed | 1));

    auto emit_main = [&] {
        for (const auto &n : plan_in.main)
            em.emitNode(n, 0);
    };
    if (outer_reps > 1) {
        Reg idx = idxRegAt(mainDepthCap);
        Reg bnd = bndRegAt(mainDepthCap);
        b.li(idx, 0);
        b.li(bnd, static_cast<int64_t>(outer_reps));
        b.countedLoop(idx, bnd, [&](const LoopCtx &) { emit_main(); });
    } else {
        emit_main();
    }
    b.halt();

    for (size_t f = 0; f < plan_in.funcs.size(); ++f) {
        b.beginFunction(funcName(static_cast<int>(f)));
        em.inFunction = true;
        for (const auto &n : plan_in.funcs[f])
            em.emitNode(n, funcDepthBase);
        em.inFunction = false;
        b.ret();
    }
    return b.build();
}

Program
ProgramGenerator::generate(uint64_t seed) const
{
    return emit(plan(seed), "synth-" + std::to_string(seed));
}

// ---------------------------------------------------------- JSON (repro)

namespace
{

void
saveNode(std::ostream &os, const LoopNode &n)
{
    os << "{\"shape\":\"" << loopShapeName(n.shape) << "\""
       << ",\"trip\":" << n.trip << ",\"mask\":" << n.mask
       << ",\"pad\":" << static_cast<unsigned>(n.pad)
       << ",\"call\":" << static_cast<int>(n.callFunc)
       << ",\"indirect\":" << (n.callIndirect ? "true" : "false")
       << ",\"children\":[";
    for (size_t i = 0; i < n.children.size(); ++i) {
        if (i)
            os << ",";
        saveNode(os, n.children[i]);
    }
    os << "]}";
}

/** Tiny recursive-descent parser for exactly the JSON save() writes
 *  (objects, arrays, strings, integers, booleans). */
struct JsonParser
{
    std::istream &is;

    int
    peek()
    {
        int c;
        while ((c = is.peek()) != EOF && std::isspace(c))
            is.get();
        return c;
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fatal("plan JSON: expected '%c'", c);
        is.get();
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        int c;
        while ((c = is.get()) != '"') {
            if (c == EOF)
                fatal("plan JSON: unterminated string");
            s.push_back(static_cast<char>(c));
        }
        return s;
    }

    /** Unsigned magnitude with overflow checking (seeds span the full
     *  uint64 range; v*10+d must not wrap or trip ubsan). */
    uint64_t
    parseUint()
    {
        peek();
        if (!std::isdigit(is.peek()))
            fatal("plan JSON: expected number");
        uint64_t v = 0;
        while (std::isdigit(is.peek())) {
            uint64_t d = static_cast<uint64_t>(is.get() - '0');
            if (v > (UINT64_MAX - d) / 10)
                fatal("plan JSON: number out of range");
            v = v * 10 + d;
        }
        return v;
    }

    int64_t
    parseInt()
    {
        peek();
        bool negative = false;
        if (is.peek() == '-') {
            is.get();
            negative = true;
        }
        uint64_t mag = parseUint();
        uint64_t limit = negative
                             ? static_cast<uint64_t>(INT64_MAX) + 1
                             : static_cast<uint64_t>(INT64_MAX);
        if (mag > limit)
            fatal("plan JSON: number out of range");
        return negative ? -static_cast<int64_t>(mag - 1) - 1
                        : static_cast<int64_t>(mag);
    }

    bool
    parseBool()
    {
        peek(); // skip whitespace
        std::string word;
        int c;
        while ((c = is.peek()) != EOF && std::isalpha(c))
            word.push_back(static_cast<char>(is.get()));
        if (word == "true")
            return true;
        if (word == "false")
            return false;
        fatal("plan JSON: expected boolean, got '%s'", word.c_str());
    }

    LoopNode
    parseNode()
    {
        LoopNode n;
        expect('{');
        bool first = true;
        while (peek() != '}') {
            if (!first)
                expect(',');
            first = false;
            std::string key = parseString();
            expect(':');
            if (key == "shape")
                n.shape = loopShapeFromName(parseString());
            else if (key == "trip")
                n.trip = parseInt();
            else if (key == "mask")
                n.mask = parseInt();
            else if (key == "pad")
                n.pad = static_cast<uint8_t>(parseInt());
            else if (key == "call")
                n.callFunc = static_cast<int8_t>(parseInt());
            else if (key == "indirect")
                n.callIndirect = parseBool();
            else if (key == "children")
                n.children = parseNodeArray();
            else
                fatal("plan JSON: unknown key '%s'", key.c_str());
        }
        expect('}');
        // Leaf-only shapes: the emitter never generates children under
        // them, so a hand-edited plan nesting there would silently
        // describe a different program than emit() produces.
        if (!n.children.empty() &&
            (n.shape == LoopShape::Overlapped ||
             n.shape == LoopShape::SelfBranch)) {
            fatal("plan JSON: shape '%s' cannot have children",
                  loopShapeName(n.shape));
        }
        return n;
    }

    std::vector<LoopNode>
    parseNodeArray()
    {
        std::vector<LoopNode> nodes;
        expect('[');
        while (peek() != ']') {
            if (!nodes.empty())
                expect(',');
            nodes.push_back(parseNode());
        }
        expect(']');
        return nodes;
    }
};

} // namespace

void
ProgramPlan::save(std::ostream &os) const
{
    os << "{\"seed\":" << seed << ",\"main\":[";
    for (size_t i = 0; i < main.size(); ++i) {
        if (i)
            os << ",";
        saveNode(os, main[i]);
    }
    os << "],\"funcs\":[";
    for (size_t f = 0; f < funcs.size(); ++f) {
        if (f)
            os << ",";
        os << "[";
        for (size_t i = 0; i < funcs[f].size(); ++i) {
            if (i)
                os << ",";
            saveNode(os, funcs[f][i]);
        }
        os << "]";
    }
    os << "]}";
}

ProgramPlan
ProgramPlan::load(std::istream &is)
{
    ProgramPlan plan;
    JsonParser p{is};
    p.expect('{');
    bool first = true;
    while (p.peek() != '}') {
        if (!first)
            p.expect(',');
        first = false;
        std::string key = p.parseString();
        p.expect(':');
        if (key == "seed") {
            plan.seed = p.parseUint();
        } else if (key == "main") {
            plan.main = p.parseNodeArray();
        } else if (key == "funcs") {
            p.expect('[');
            while (p.peek() != ']') {
                if (!plan.funcs.empty())
                    p.expect(',');
                plan.funcs.push_back(p.parseNodeArray());
            }
            p.expect(']');
        } else {
            fatal("plan JSON: unknown key '%s'", key.c_str());
        }
    }
    p.expect('}');
    return plan;
}

} // namespace synth
} // namespace loopspec
