/**
 * @file
 * Differential oracle over the three trace-pipeline execution paths.
 *
 * PR 2 left the repo with three independently implemented ways to turn a
 * Program into loop events: the scalar step() interpreter (the reference),
 * the predecoded batch run() path, and the record/replay layer
 * (ControlTrace + LoopEventRecording). DiffChecker runs one program
 * through all of them, at several CLS sizes, and reports the first
 * divergence:
 *
 *  - DynInstr streams of step() and run() must be bit-identical, on
 *    every delivery layout: SoA hot planes, shim-materialized records,
 *    and the direct AoS fill (EngineConfig::soaBatches = false);
 *  - the LoopDetector must emit the identical event sequence whether fed
 *    per-instruction, in batches (hot-plane or record form), by the
 *    engine, by control-trace replay, or by chunk-interleaved replay
 *    sources (trace_io/replay_source.hh);
 *  - replaying a LoopEventRecording must reproduce the events, the
 *    Fig-4 meter artifacts, and a re-recorded recording exactly;
 *  - Table-1 statistics must agree across every path;
 *  - detector invariants must hold on the reference stream (conservation,
 *    iteration-count/backedge accounting, event ordering, depth bounds);
 *  - the LET/LIT meters must match independent list-based LRU reference
 *    models (LRU victim validity);
 *  - the branch-predictor baselines (src/predict/) must end in the
 *    identical table state — stateHash plus lookup/hit counts — whether
 *    fed scalar onInstr calls, odd-sized manual batches, or a
 *    control-trace replay's synthesized batches (predictor-state
 *    invariant, docs/PREDICTORS.md);
 *  - the memory-dependence conflict profiler (docs/DATASPEC.md) must
 *    produce identical conflict sets, violation-event sequences and
 *    state hashes whether its recording came from the scalar-fed
 *    detector, the SoA-batched engine run, or a control-trace replay,
 *    and whether its sidecar was recorded scalar or batched.
 *
 * `injectClsOffByOne` deliberately runs the replay detector one CLS entry
 * short, and `injectConflictIterOffByOne` shifts the replay-side conflict
 * profiler's iteration indexing by one — synthetic bugs the harness must
 * catch; the fuzz tests use them to prove the oracle has teeth.
 */

#ifndef LOOPSPEC_SYNTH_DIFF_CHECKER_HH
#define LOOPSPEC_SYNTH_DIFF_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "loop/loop_event.hh"
#include "program/program.hh"

namespace loopspec
{
namespace synth
{

/** One captured loop event, every field comparable across pipelines. */
struct LoggedEvent
{
    enum class Kind : uint8_t
    {
        ExecStart,
        IterStart,
        IterEnd,
        ExecEnd,
        SingleIter,
    };

    Kind kind = Kind::ExecStart;
    uint64_t pos = 0;
    uint64_t execId = 0;
    uint64_t parent = 0;     //!< ExecStart only
    uint32_t loop = 0;
    uint32_t a = 0;          //!< iterIndex / iterCount
    uint32_t depth = 0;
    uint32_t branchAddr = 0; //!< ExecStart / SingleIter
    ExecEndReason reason = ExecEndReason::Close;

    bool operator==(const LoggedEvent &o) const;
    bool operator!=(const LoggedEvent &o) const { return !(*this == o); }
};

/** Compact one-line rendering for failure messages. */
std::string describeEvent(const LoggedEvent &ev);

/** LoopListener capturing the full event stream for comparison. */
class EventLog : public LoopListener
{
  public:
    bool consumesInstrs() const override { return false; }
    void onExecStart(const ExecStartEvent &ev) override;
    void onIterStart(const IterEvent &ev) override;
    void onIterEnd(const IterEvent &ev) override;
    void onExecEnd(const ExecEndEvent &ev) override;
    void onSingleIterExec(const SingleIterExecEvent &ev) override;
    void onTraceDone(uint64_t total_instrs) override;

    std::vector<LoggedEvent> events;
    uint64_t totalInstrs = 0;
    bool done = false;
};

/** DiffChecker configuration. */
struct DiffConfig
{
    /** CLS sizes every comparison runs at. */
    std::vector<size_t> clsSizes = {4, 8, 16};

    /** LET/LIT meter sizes (the Fig-4 sweep). */
    std::vector<size_t> meterSizes = {2, 4, 8, 16};

    /** Branch-predictor configurations for the predictor-state
     *  invariant (small tables so generated programs actually alias).
     *  Every implemented scheme is represented — the fuzz campaign
     *  (CI seeds 0..199, asan+ubsan) exercises each one per seed. */
    std::vector<std::string> predictorSpecs = {
        "bimodal:6",
        "gshare:6",
        "local:5/3",
        "let:4",
        "tournament:let:4+local:5/3",
        "tage:3/1-4/5",
    };

    /** Fuel cap: a generator bug cannot hang the harness (equivalence
     *  must hold under truncation too). */
    uint64_t maxInstrs = 150000;

    /** Run the control-replay detector with one CLS entry fewer — a
     *  deliberate off-by-one the harness must detect (self-check). */
    bool injectClsOffByOne = false;

    /** Shift the replay-side conflict profiler's per-iteration
     *  dependence indexing by one (ConflictConfig::injectIterOffByOne,
     *  replay leg only) — the conflict stage must flag the asymmetry
     *  (self-check). */
    bool injectConflictIterOffByOne = false;

    /**
     * Disk round-trip oracle (docs/TRACE_FORMAT.md): encode the
     * ControlTrace and LoopEventRecording as container images under
     * both encodings, decode them back and require bit-exact recovery;
     * write them to real files and require the out-of-core streaming
     * replay to reproduce the reference event log; then apply seeded
     * byte-flip / truncation / extension corruptions to every image and
     * require each one to be rejected with a diagnostic — a corrupted
     * container must never decode cleanly or replay wrong-but-clean.
     * Default on; tools/fuzz_loopspec --no-disk-oracle disables it.
     */
    bool diskOracle = true;

    /** Seeded corruption variants per container image (disk oracle). */
    size_t corruptionsPerImage = 6;
};

/** Outcome of one differential check. */
struct DiffResult
{
    bool ok = true;
    std::string failure; //!< first divergence, human readable

    static DiffResult
    fail(std::string why)
    {
        return {false, std::move(why)};
    }
};

/** Run @p prog through every pipeline and compare. */
DiffResult diffProgram(const Program &prog, const DiffConfig &cfg = {});

} // namespace synth
} // namespace loopspec

#endif // LOOPSPEC_SYNTH_DIFF_CHECKER_HH
