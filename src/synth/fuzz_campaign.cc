#include "synth/fuzz_campaign.hh"

#include <algorithm>
#include <memory>
#include <sstream>

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace loopspec
{
namespace synth
{

namespace
{

/** Does the plan's emitted program still fail the checker? */
bool
planFails(const ProgramGenerator &gen, const ProgramPlan &plan,
          const DiffConfig &diff, std::string *msg)
{
    Program prog = gen.emit(plan, "shrink");
    DiffResult r = diffProgram(prog, diff);
    if (!r.ok && msg)
        *msg = r.failure;
    return !r.ok;
}

/** Address of one node: which root block, then child indices. */
struct NodePath
{
    int func = -1; //!< -1 = main, else funcs[func]
    std::vector<size_t> idx;
};

std::vector<LoopNode> &
rootBlock(ProgramPlan &plan, int func)
{
    return func < 0 ? plan.main
                    : plan.funcs[static_cast<size_t>(func)];
}

/** Parent block of the node at @p path plus its index in that block. */
std::vector<LoopNode> &
parentBlock(ProgramPlan &plan, const NodePath &path, size_t &last)
{
    std::vector<LoopNode> *blk = &rootBlock(plan, path.func);
    for (size_t i = 0; i + 1 < path.idx.size(); ++i)
        blk = &(*blk)[path.idx[i]].children;
    last = path.idx.back();
    return *blk;
}

void
collectPathsIn(const std::vector<LoopNode> &block, int func,
               std::vector<size_t> &prefix, std::vector<NodePath> &out)
{
    for (size_t i = 0; i < block.size(); ++i) {
        prefix.push_back(i);
        out.push_back({func, prefix});
        collectPathsIn(block[i].children, func, prefix, out);
        prefix.pop_back();
    }
}

/** Every node of the plan, pre-order. */
std::vector<NodePath>
collectPaths(const ProgramPlan &plan)
{
    std::vector<NodePath> out;
    std::vector<size_t> prefix;
    collectPathsIn(plan.main, -1, prefix, out);
    for (size_t f = 0; f < plan.funcs.size(); ++f)
        collectPathsIn(plan.funcs[f], static_cast<int>(f), prefix, out);
    return out;
}

bool
nodeIsMinimal(const LoopNode &n)
{
    return n.shape == LoopShape::Counted && n.trip <= 2 && n.pad == 0 &&
           n.mask == 0 && n.callFunc < 0;
}

} // namespace

ProgramPlan
shrinkPlan(const ProgramGenerator &gen, const ProgramPlan &plan,
           const DiffConfig &diff, std::string *failure_out)
{
    std::string msg;
    if (!planFails(gen, plan, diff, &msg))
        return plan; // nothing to shrink

    ProgramPlan current = plan;
    bool progress = true;
    unsigned rounds = 0;
    while (progress && ++rounds < 200) {
        progress = false;

        // 1. Bisect the top-level main sequence: drop aligned chunks,
        //    largest first (classic ddmin over the structure vector).
        for (size_t chunk = std::max<size_t>(current.main.size() / 2, 1);
             chunk >= 1 && !current.main.empty(); chunk /= 2) {
            for (size_t at = 0; at < current.main.size();) {
                ProgramPlan cand = current;
                size_t n = std::min(chunk, cand.main.size() - at);
                cand.main.erase(cand.main.begin() +
                                    static_cast<long>(at),
                                cand.main.begin() +
                                    static_cast<long>(at + n));
                if (planFails(gen, cand, diff, &msg)) {
                    current = std::move(cand);
                    progress = true;
                } else {
                    at += chunk;
                }
            }
            if (chunk == 1)
                break;
        }

        // 2. Per node: try full removal, then hoisting its children into
        //    its place, then simplifying it to a minimal counted loop.
        //    Paths are revisited from scratch after every accepted edit.
        bool edited = true;
        while (edited) {
            edited = false;
            std::vector<NodePath> paths = collectPaths(current);
            for (const auto &path : paths) {
                size_t last = 0;
                {
                    ProgramPlan cand = current;
                    std::vector<LoopNode> &blk =
                        parentBlock(cand, path, last);
                    blk.erase(blk.begin() + static_cast<long>(last));
                    if (planFails(gen, cand, diff, &msg)) {
                        current = std::move(cand);
                        progress = edited = true;
                        break;
                    }
                }
                {
                    ProgramPlan cand = current;
                    std::vector<LoopNode> &blk =
                        parentBlock(cand, path, last);
                    if (!blk[last].children.empty()) {
                        std::vector<LoopNode> kids =
                            std::move(blk[last].children);
                        blk.erase(blk.begin() + static_cast<long>(last));
                        blk.insert(blk.begin() + static_cast<long>(last),
                                   kids.begin(), kids.end());
                        if (planFails(gen, cand, diff, &msg)) {
                            current = std::move(cand);
                            progress = edited = true;
                            break;
                        }
                    }
                }
                {
                    ProgramPlan cand = current;
                    std::vector<LoopNode> &blk =
                        parentBlock(cand, path, last);
                    LoopNode &n = blk[last];
                    if (!nodeIsMinimal(n)) {
                        n.shape = LoopShape::Counted;
                        n.trip = std::min<int64_t>(n.trip, 2);
                        n.pad = 0;
                        n.mask = 0;
                        n.callFunc = -1;
                        n.callIndirect = false;
                        if (planFails(gen, cand, diff, &msg)) {
                            current = std::move(cand);
                            progress = edited = true;
                            break;
                        }
                    }
                }
                {
                    // Call-preserving simplify: a callee loop often
                    // supplies the failing CLS depth, while an
                    // irregular shape (early exit, data-dependent
                    // trip) around the call only gates whether the
                    // callee runs. Regularising the shape but keeping
                    // the call frees the LCG-entangled siblings for
                    // removal.
                    ProgramPlan cand = current;
                    std::vector<LoopNode> &blk =
                        parentBlock(cand, path, last);
                    LoopNode &n = blk[last];
                    bool irregular_call =
                        n.callFunc >= 0 &&
                        (n.shape != LoopShape::Counted || n.pad != 0 ||
                         n.mask != 0 || n.trip > 2);
                    if (irregular_call) {
                        n.shape = LoopShape::Counted;
                        n.trip = std::min<int64_t>(n.trip, 2);
                        n.pad = 0;
                        n.mask = 0;
                        if (planFails(gen, cand, diff, &msg)) {
                            current = std::move(cand);
                            progress = edited = true;
                            break;
                        }
                    }
                }
            }
        }

        // 3. Empty helper functions (indices referenced from callFunc
        //    stay stable; an empty function is just call+ret).
        for (size_t f = 0; f < current.funcs.size(); ++f) {
            if (current.funcs[f].empty())
                continue;
            ProgramPlan cand = current;
            cand.funcs[f].clear();
            if (planFails(gen, cand, diff, &msg)) {
                current = std::move(cand);
                progress = true;
            }
        }
    }

    // Record the shrunk plan's own divergence message.
    if (failure_out) {
        std::string final_msg;
        planFails(gen, current, diff, &final_msg);
        *failure_out = final_msg;
    }
    return current;
}

FuzzReport
runFuzzCampaign(const FuzzOptions &opts)
{
    if (opts.seedHi < opts.seedLo)
        fatal("fuzz: empty seed range [%llu, %llu]",
              static_cast<unsigned long long>(opts.seedLo),
              static_cast<unsigned long long>(opts.seedHi));
    uint64_t n = opts.seedHi - opts.seedLo + 1;

    ProgramGenerator gen(opts.gen);
    std::vector<std::unique_ptr<FuzzFailure>> slots(n);

    parallelFor(opts.jobs, n, [&](uint64_t i) {
        uint64_t seed = opts.seedLo + i;
        ProgramPlan plan = gen.plan(seed);
        Program prog =
            gen.emit(plan, "fuzz-" + std::to_string(seed));
        DiffResult r = diffProgram(prog, opts.diff);
        if (r.ok)
            return;
        auto failure = std::make_unique<FuzzFailure>();
        failure->seed = seed;
        failure->message = r.failure;
        if (opts.shrink) {
            failure->plan = shrinkPlan(gen, plan, opts.diff,
                                       &failure->shrunkMessage);
        } else {
            failure->plan = std::move(plan);
            failure->shrunkMessage = r.failure;
        }
        failure->loops = failure->plan.loopCount();
        slots[i] = std::move(failure);
    });

    FuzzReport report;
    report.seedsRun = n;
    for (auto &slot : slots) {
        if (slot)
            report.failures.push_back(std::move(*slot));
    }
    return report;
}

void
writeReproJson(std::ostream &os, const FuzzFailure &failure,
               const DiffConfig &diff)
{
    auto escape = [](const std::string &s) {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    };
    os << "{\n  \"seed\": " << failure.seed << ",\n  \"failure\": \""
       << escape(failure.shrunkMessage) << "\",\n  \"loops\": "
       << failure.loops << ",\n  \"cls\": [";
    for (size_t i = 0; i < diff.clsSizes.size(); ++i)
        os << (i ? "," : "") << diff.clsSizes[i];
    os << "],\n  \"plan\": ";
    failure.plan.save(os);
    os << "\n}\n";
}

ProgramPlan
loadReproPlan(std::istream &is)
{
    std::stringstream buf;
    buf << is.rdbuf();
    std::string text = buf.str();
    // A repro wraps the plan under "plan"; a bare plan document starts
    // with its own keys. Find the plan object either way.
    size_t at = text.find("\"plan\":");
    if (at != std::string::npos) {
        at = text.find('{', at);
        if (at == std::string::npos)
            fatal("repro JSON: no plan object after \"plan\":");
        std::istringstream plan_is(text.substr(at));
        return ProgramPlan::load(plan_is);
    }
    std::istringstream plan_is(text);
    return ProgramPlan::load(plan_is);
}

} // namespace synth
} // namespace loopspec
