/**
 * @file
 * Mini-RISC instruction set used by the synthetic workload substrate.
 *
 * The CLS mechanism (paper §2.2) classifies retired instructions into
 * branch / jump / call / return and otherwise only needs PC, direction,
 * taken-ness and target; the data-speculation statistics (§4) additionally
 * need register and memory operand values. This ISA is the smallest one
 * that produces all of that with realistic control-flow shapes.
 */

#ifndef LOOPSPEC_ISA_OPCODE_HH
#define LOOPSPEC_ISA_OPCODE_HH

#include <cstdint>

namespace loopspec
{

/** Opcodes of the mini-RISC ISA. */
enum class Opcode : uint8_t
{
    Nop,
    Halt,

    // ALU, register forms: rd = rs1 <op> rs2.
    Add,
    Sub,
    Mul,
    Div, // division by zero yields 0 (synthetic substrate convention)
    Rem, // remainder by zero yields 0
    And,
    Or,
    Xor,
    Shl,
    Shr,

    // Comparisons: rd = (rs1 <cmp> rs2) ? 1 : 0.
    Slt,
    Sle,
    Seq,
    Sne,

    // ALU, immediate forms: rd = rs1 <op> imm.
    Addi,
    Muli,
    Andi,
    Ori,
    Xori,
    Shli,
    Shri,

    Li,  // rd = imm
    Mov, // rd = rs1

    // Memory (word addressed): Ld rd, imm(rs1); St rs2 -> imm(rs1).
    Ld,
    St,

    // Conditional branches: if (rs1 <cmp> rs2) pc = target.
    Beq,
    Bne,
    Blt,
    Bge,
    Ble,
    Bgt,

    // Unconditional control.
    Jmp,     // pc = target
    JmpInd,  // pc = value(rs1)
    Call,    // call target; return address kept on the engine RA stack
    CallInd, // call value(rs1)
    Ret,     // return to popped RA

    NumOpcodes,
};

/**
 * Control-transfer classification, exactly the categories the CLS update
 * algorithm distinguishes (§2.2: "three kinds of instructions: branch,
 * jump and return"; calls are jumps that never terminate a loop).
 */
enum class CtrlKind : uint8_t
{
    None,   //!< not a control transfer
    Branch, //!< conditional branch
    Jump,   //!< unconditional jump (direct or indirect)
    Call,   //!< subroutine call (direct or indirect)
    Ret,    //!< subroutine return
};

/** Classification of an opcode into its control kind. */
CtrlKind ctrlKindOf(Opcode op);

/** True for Beq..Bgt. */
bool isBranch(Opcode op);

/** True for any opcode that may redirect the PC. */
bool isControl(Opcode op);

/** Printable mnemonic. */
const char *mnemonic(Opcode op);

} // namespace loopspec

#endif // LOOPSPEC_ISA_OPCODE_HH
