/**
 * @file
 * Static instruction representation and register naming.
 */

#ifndef LOOPSPEC_ISA_INSTR_HH
#define LOOPSPEC_ISA_INSTR_HH

#include <cstdint>

#include "isa/opcode.hh"

namespace loopspec
{

/** Number of architectural integer registers; register 0 is wired to 0. */
constexpr unsigned numRegs = 32;

/** Typed register index (Core Guidelines P.4: avoid bare ints). */
struct Reg
{
    uint8_t idx = 0;
};

constexpr bool operator==(Reg a, Reg b) { return a.idx == b.idx; }

/** Named register constants r0..r31 for workload authors. */
namespace regs
{
#define LOOPSPEC_DEF_REG(n) inline constexpr Reg r##n{n}
LOOPSPEC_DEF_REG(0); LOOPSPEC_DEF_REG(1); LOOPSPEC_DEF_REG(2);
LOOPSPEC_DEF_REG(3); LOOPSPEC_DEF_REG(4); LOOPSPEC_DEF_REG(5);
LOOPSPEC_DEF_REG(6); LOOPSPEC_DEF_REG(7); LOOPSPEC_DEF_REG(8);
LOOPSPEC_DEF_REG(9); LOOPSPEC_DEF_REG(10); LOOPSPEC_DEF_REG(11);
LOOPSPEC_DEF_REG(12); LOOPSPEC_DEF_REG(13); LOOPSPEC_DEF_REG(14);
LOOPSPEC_DEF_REG(15); LOOPSPEC_DEF_REG(16); LOOPSPEC_DEF_REG(17);
LOOPSPEC_DEF_REG(18); LOOPSPEC_DEF_REG(19); LOOPSPEC_DEF_REG(20);
LOOPSPEC_DEF_REG(21); LOOPSPEC_DEF_REG(22); LOOPSPEC_DEF_REG(23);
LOOPSPEC_DEF_REG(24); LOOPSPEC_DEF_REG(25); LOOPSPEC_DEF_REG(26);
LOOPSPEC_DEF_REG(27); LOOPSPEC_DEF_REG(28); LOOPSPEC_DEF_REG(29);
LOOPSPEC_DEF_REG(30); LOOPSPEC_DEF_REG(31);
#undef LOOPSPEC_DEF_REG
} // namespace regs

/**
 * One static instruction. Targets of direct control transfers are stored
 * as resolved byte addresses (the ProgramBuilder patches labels).
 */
struct Instr
{
    Opcode op = Opcode::Nop;
    uint8_t rd = 0;
    uint8_t rs1 = 0;
    uint8_t rs2 = 0;
    int64_t imm = 0;
    uint32_t target = 0; //!< resolved address for Beq..Jmp/Call
};

/** Base byte address of the code segment. */
constexpr uint32_t codeBase = 0x1000;

/** Byte size of each instruction slot. */
constexpr uint32_t instrBytes = 4;

/** Address of the instruction at code index @p index. */
constexpr uint32_t
addrOfIndex(uint64_t index)
{
    return codeBase + static_cast<uint32_t>(index) * instrBytes;
}

/** Code index of the instruction at byte address @p addr. */
constexpr uint64_t
indexOfAddr(uint32_t addr)
{
    return (addr - codeBase) / instrBytes;
}

} // namespace loopspec

#endif // LOOPSPEC_ISA_INSTR_HH
