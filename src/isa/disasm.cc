#include "isa/disasm.hh"

#include "util/logging.hh"

namespace loopspec
{

std::string
disassemble(const Instr &in)
{
    const char *m = mnemonic(in.op);
    switch (in.op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Ret:
        return m;
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::Slt:
      case Opcode::Sle:
      case Opcode::Seq:
      case Opcode::Sne:
        return strprintf("%s r%d, r%d, r%d", m, in.rd, in.rs1, in.rs2);
      case Opcode::Addi:
      case Opcode::Muli:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Shli:
      case Opcode::Shri:
        return strprintf("%s r%d, r%d, %lld", m, in.rd, in.rs1,
                         static_cast<long long>(in.imm));
      case Opcode::Li:
        return strprintf("%s r%d, %lld", m, in.rd,
                         static_cast<long long>(in.imm));
      case Opcode::Mov:
        return strprintf("%s r%d, r%d", m, in.rd, in.rs1);
      case Opcode::Ld:
        return strprintf("%s r%d, %lld(r%d)", m, in.rd,
                         static_cast<long long>(in.imm), in.rs1);
      case Opcode::St:
        return strprintf("%s r%d, %lld(r%d)", m, in.rs2,
                         static_cast<long long>(in.imm), in.rs1);
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt:
        return strprintf("%s r%d, r%d, 0x%x", m, in.rs1, in.rs2, in.target);
      case Opcode::Jmp:
      case Opcode::Call:
        return strprintf("%s 0x%x", m, in.target);
      case Opcode::JmpInd:
      case Opcode::CallInd:
        return strprintf("%s r%d", m, in.rs1);
      default:
        panic("disassemble: bad opcode %d", static_cast<int>(in.op));
    }
}

std::string
disassembleAt(uint32_t addr, const Instr &in)
{
    return strprintf("%x: %s", addr, disassemble(in).c_str());
}

} // namespace loopspec
