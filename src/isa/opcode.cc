#include "isa/opcode.hh"

#include "util/logging.hh"

namespace loopspec
{

CtrlKind
ctrlKindOf(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Ble:
      case Opcode::Bgt:
        return CtrlKind::Branch;
      case Opcode::Jmp:
      case Opcode::JmpInd:
        return CtrlKind::Jump;
      case Opcode::Call:
      case Opcode::CallInd:
        return CtrlKind::Call;
      case Opcode::Ret:
        return CtrlKind::Ret;
      default:
        return CtrlKind::None;
    }
}

bool
isBranch(Opcode op)
{
    return ctrlKindOf(op) == CtrlKind::Branch;
}

bool
isControl(Opcode op)
{
    return ctrlKindOf(op) != CtrlKind::None;
}

const char *
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::Slt: return "slt";
      case Opcode::Sle: return "sle";
      case Opcode::Seq: return "seq";
      case Opcode::Sne: return "sne";
      case Opcode::Addi: return "addi";
      case Opcode::Muli: return "muli";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Shli: return "shli";
      case Opcode::Shri: return "shri";
      case Opcode::Li: return "li";
      case Opcode::Mov: return "mov";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Ble: return "ble";
      case Opcode::Bgt: return "bgt";
      case Opcode::Jmp: return "jmp";
      case Opcode::JmpInd: return "jmpi";
      case Opcode::Call: return "call";
      case Opcode::CallInd: return "calli";
      case Opcode::Ret: return "ret";
      default:
        panic("mnemonic: bad opcode %d", static_cast<int>(op));
    }
}

} // namespace loopspec
