/**
 * @file
 * Textual disassembly of mini-RISC instructions, for debugging and the
 * example tools.
 */

#ifndef LOOPSPEC_ISA_DISASM_HH
#define LOOPSPEC_ISA_DISASM_HH

#include <string>

#include "isa/instr.hh"

namespace loopspec
{

/** Render one instruction as text, e.g. "add r3, r3, r1". */
std::string disassemble(const Instr &instr);

/** Render with its address prefix, e.g. "1020: blt r1, r2, 0x1008". */
std::string disassembleAt(uint32_t addr, const Instr &instr);

} // namespace loopspec

#endif // LOOPSPEC_ISA_DISASM_HH
