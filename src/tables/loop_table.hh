/**
 * @file
 * The paper's loop-information tables (LET and LIT, §2.3, Figure 3) share
 * one organisation: fully associative, identified by the loop target
 * address T, LRU replacement, with a per-use payload. LoopTable models
 * that organisation generically; the LRU key ("initiated a new
 * execution/iteration least recently") is whatever event the owner calls
 * touch() on.
 */

#ifndef LOOPSPEC_TABLES_LOOP_TABLE_HH
#define LOOPSPEC_TABLES_LOOP_TABLE_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/prefetch.hh"

namespace loopspec
{

/**
 * Fully associative, LRU-replaced table keyed by loop id. Linear search:
 * hardware-realistic sizes are 2..16 entries.
 */
template <typename Payload>
class LoopTable
{
  public:
    explicit LoopTable(size_t num_entries) : capacity(num_entries)
    {
        LOOPSPEC_ASSERT(capacity >= 1, "LoopTable needs >= 1 entry");
        slots.reserve(capacity);
    }

    /** Find the payload for @p loop; nullptr on miss. Does not touch. */
    Payload *
    find(uint32_t loop)
    {
        for (auto &s : slots) {
            if (s.loop == loop)
                return &s.data;
        }
        return nullptr;
    }

    const Payload *
    find(uint32_t loop) const
    {
        for (const auto &s : slots) {
            if (s.loop == loop)
                return &s.data;
        }
        return nullptr;
    }

    /** Update the LRU stamp of @p loop (no-op on miss). */
    void
    touch(uint32_t loop)
    {
        for (auto &s : slots) {
            if (s.loop == loop) {
                s.lastUse = ++clock;
                return;
            }
        }
    }

    /**
     * Insert a fresh payload for @p loop, evicting the LRU entry when
     * full. The caller must have checked find() first: double insertion
     * panics. Returns the new payload; reports the evicted loop id via
     * @p evicted_loop (set to 0 when nothing was evicted).
     */
    Payload &
    insert(uint32_t loop, uint32_t *evicted_loop = nullptr)
    {
        LOOPSPEC_ASSERT(find(loop) == nullptr, "double insert");
        if (evicted_loop)
            *evicted_loop = 0;
        if (slots.size() < capacity) {
            slots.push_back({loop, ++clock, Payload{}});
            return slots.back().data;
        }
        size_t victim = victimIndex();
        if (evicted_loop)
            *evicted_loop = slots[victim].loop;
        slots[victim] = {loop, ++clock, Payload{}};
        return slots[victim].data;
    }

    /**
     * The loop id that insert() would evict right now: 0 when the table
     * still has free slots. Lets owners implement insertion-inhibiting
     * policies (the paper's §2.3.2 nesting-aware variant).
     */
    uint32_t
    victimLoop() const
    {
        if (slots.size() < capacity)
            return 0;
        return slots[victimIndex()].loop;
    }

    size_t size() const { return slots.size(); }
    size_t numEntries() const { return capacity; }

    /**
     * Warm the table's set lines ahead of an upcoming find()/touch().
     * Fully associative means every line is in the set: at the paper's
     * 2..16 entries that is one to a few cache lines, issued while the
     * producer is still decoding the transfer that will probe them.
     */
    void
    prefetch() const
    {
        constexpr size_t stride =
            sizeof(Slot) >= 64 ? 1 : 64 / sizeof(Slot);
        const Slot *base = slots.data();
        const Slot *end = base + slots.size();
        for (const Slot *p = base; p < end; p += stride)
            prefetchRead(p);
    }

  private:
    struct Slot
    {
        uint32_t loop;
        uint64_t lastUse;
        Payload data;
    };

    /** Index of the LRU slot; requires a non-empty table. */
    size_t
    victimIndex() const
    {
        size_t victim = 0;
        for (size_t i = 1; i < slots.size(); ++i) {
            if (slots[i].lastUse < slots[victim].lastUse)
                victim = i;
        }
        return victim;
    }

    std::vector<Slot> slots;
    size_t capacity;
    uint64_t clock = 0;
};

} // namespace loopspec

#endif // LOOPSPEC_TABLES_LOOP_TABLE_HH
