#include "tables/hit_ratio.hh"

namespace loopspec
{

LetHitMeter::LetHitMeter(size_t num_entries, TableReplacement policy_)
    : table(num_entries), policy(policy_)
{
}

void
LetHitMeter::onExecStart(const ExecStartEvent &ev)
{
    nesting.onExecStart(ev.loop);
    ++res.accesses;
    if (Entry *e = table.find(ev.loop)) {
        if (e->completedExecs >= 2)
            ++res.hits;
        table.touch(ev.loop);
        return;
    }
    // §2.3.2 nest-aware variant: do not insert when it would evict a
    // loop nested into the newcomer (inner loops are the more valuable
    // residents).
    if (policy == TableReplacement::NestAware) {
        uint32_t victim = table.victimLoop();
        if (victim != 0 && nesting.nestedInto(victim, ev.loop))
            return;
    }
    table.insert(ev.loop);
    table.touch(ev.loop);
}

void
LetHitMeter::onExecEnd(const ExecEndEvent &ev)
{
    nesting.onExecEnd(ev.loop);
    // Overflow drops lose the execution mid-flight; the paper's mechanism
    // would never see it complete, so only real terminations count.
    if (ev.reason == ExecEndReason::Overflow)
        return;
    if (Entry *e = table.find(ev.loop))
        ++e->completedExecs;
}

void
LetHitMeter::onSingleIterExec(const SingleIterExecEvent &ev)
{
    if (Entry *e = table.find(ev.loop))
        ++e->completedExecs;
}

LitHitMeter::LitHitMeter(size_t num_entries, TableReplacement policy_)
    : table(num_entries), policy(policy_)
{
}

void
LitHitMeter::onExecStart(const ExecStartEvent &ev)
{
    nesting.onExecStart(ev.loop);
    if (!table.find(ev.loop)) {
        if (policy == TableReplacement::NestAware) {
            uint32_t victim = table.victimLoop();
            if (victim != 0 && nesting.nestedInto(victim, ev.loop))
                return;
        }
        table.insert(ev.loop);
    }
    // LIT LRU is keyed by iteration starts, not execution starts; the
    // insertion itself counts as the loop's first use.
    table.touch(ev.loop);
}

void
LitHitMeter::onExecEnd(const ExecEndEvent &ev)
{
    nesting.onExecEnd(ev.loop);
}

void
LitHitMeter::onIterStart(const IterEvent &ev)
{
    ++res.accesses;
    if (Entry *e = table.find(ev.loop)) {
        if (e->completedIters >= 2)
            ++res.hits;
        table.touch(ev.loop);
    }
    // Miss with no resident entry (evicted mid-execution): counted as a
    // miss; §2.3 inserts only on execution start, so nothing is inserted.
}

void
LitHitMeter::onIterEnd(const IterEvent &ev)
{
    if (Entry *e = table.find(ev.loop))
        ++e->completedIters;
}

} // namespace loopspec
