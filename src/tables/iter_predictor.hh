/**
 * @file
 * Iteration-count stride predictor: the LET payload the STR speculation
 * policy consumes (§2.3 "each LET entry contains ... the last iteration
 * count and the difference between the previous two counts"; §3.1.2 "a
 * two-bit saturating counter is used" for stride confidence).
 */

#ifndef LOOPSPEC_TABLES_ITER_PREDICTOR_HH
#define LOOPSPEC_TABLES_ITER_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "tables/loop_table.hh"
#include "predict/sat_counter.hh"

namespace loopspec
{

/** What the predictor knows about a loop's trip count. */
enum class TripPredictionKind : uint8_t
{
    Unknown,    //!< loop never completed an execution yet
    LastCount,  //!< only the last execution's count is trustworthy
    Stride,     //!< reliable stride: predict last + stride
};

/** A trip-count prediction. */
struct TripPrediction
{
    TripPredictionKind kind = TripPredictionKind::Unknown;
    int64_t count = 0; //!< predicted total iterations of this execution
};

/**
 * Per-loop trip-count stride predictor — the LET payload. Unbounded by
 * default (num_entries == 0), matching §3's evaluation with sufficient
 * LET capacity; pass a finite entry count to model the real small
 * hardware table (fully associative, LRU on execution recording), which
 * bench_ablation part E sweeps to connect the Figure-4 LET hit ratios
 * to delivered TPC.
 */
class IterCountPredictor
{
  public:
    explicit IterCountPredictor(size_t num_entries = 0);

    /** Record a completed execution of @p loop with @p iters iterations. */
    void recordExecution(uint32_t loop, uint64_t iters);

    /** Predict the total iteration count of a starting execution. */
    TripPrediction predict(uint32_t loop) const;

    size_t trackedLoops() const;

  private:
    struct Entry
    {
        int64_t lastCount = 0;
        int64_t stride = 0;
        bool hasLast = false;
        bool hasStride = false;
        TwoBitCounter confidence;
    };

    static void update(Entry &e, int64_t count);
    static TripPrediction predictFrom(const Entry &e);

    std::unordered_map<uint32_t, Entry> entries; //!< unbounded mode
    std::unique_ptr<LoopTable<Entry>> bounded;   //!< finite-LET mode
};

} // namespace loopspec

#endif // LOOPSPEC_TABLES_ITER_PREDICTOR_HH
