/**
 * @file
 * LET and LIT hit-ratio meters reproducing the §2.3.1 methodology:
 * table contents are considered useful once two complete
 * executions/iterations have been observed since the entry was inserted
 * (enough history for a stride predictor).
 */

#ifndef LOOPSPEC_TABLES_HIT_RATIO_HH
#define LOOPSPEC_TABLES_HIT_RATIO_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "loop/loop_event.hh"
#include "tables/loop_table.hh"

namespace loopspec
{

/**
 * Replacement variants evaluated by the paper (§2.3.2): plain LRU, and
 * the alternative that "inhibits the insertion of a loop in the LIT and
 * the LET when it implies to eliminate a loop that is nested into it".
 * The paper found the improvement negligible; bench_ablation part D
 * reproduces that comparison.
 */
enum class TableReplacement : uint8_t
{
    Lru,
    NestAware,
};

/**
 * Tracks which loops have (ever) executed nested inside which others —
 * the "store for each loop, which other loops are nested into it" state
 * the nest-aware policy needs. Shared helper for both meters.
 */
class LoopNestingTracker
{
  public:
    void
    onExecStart(uint32_t loop)
    {
        for (uint32_t outer : live)
            inner[outer].insert(loop);
        live.push_back(loop);
    }

    void
    onExecEnd(uint32_t loop)
    {
        for (size_t i = live.size(); i-- > 0;) {
            if (live[i] == loop) {
                live.erase(live.begin() + static_cast<long>(i));
                return;
            }
        }
    }

    /** Has @p candidate ever had @p victim nested inside it? */
    bool
    nestedInto(uint32_t victim, uint32_t candidate) const
    {
        auto it = inner.find(candidate);
        return it != inner.end() && it->second.count(victim) != 0;
    }

  private:
    std::vector<uint32_t> live;
    std::unordered_map<uint32_t, std::unordered_set<uint32_t>> inner;
};

/** Accumulated access/hit counts. */
struct HitRatioResult
{
    uint64_t accesses = 0;
    uint64_t hits = 0;

    double
    ratio() const
    {
        return accesses ? static_cast<double>(hits) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * LET hit-ratio meter. Accessed when a new execution starts: hit iff the
 * loop's entry is present and >= 2 executions of it completed since
 * insertion. Entries are inserted on execution start; LRU is keyed by
 * execution starts. Completions of single-iteration executions advance
 * the completion count (they are detected, complete executions) but are
 * not themselves measured accesses — they were never *started* from the
 * table's point of view (detection happens at their end).
 */
class LetHitMeter : public LoopListener
{
  public:
    explicit LetHitMeter(size_t num_entries,
                         TableReplacement policy = TableReplacement::Lru);

    /** Event-driven only: instruction data carries no information. */
    bool consumesInstrs() const override { return false; }
    /** Table lines keyed by loop id: worth warming before dispatch. */
    bool wantsPrefetchHints() const override { return true; }
    void prefetchLoop(uint32_t loop) override
    {
        (void)loop;
        table.prefetch();
    }
    void onExecStart(const ExecStartEvent &ev) override;
    void onExecEnd(const ExecEndEvent &ev) override;
    void onSingleIterExec(const SingleIterExecEvent &ev) override;

    const HitRatioResult &result() const { return res; }
    size_t numEntries() const { return table.numEntries(); }

  private:
    struct Entry
    {
        uint32_t completedExecs = 0;
    };

    LoopTable<Entry> table;
    HitRatioResult res;
    TableReplacement policy;
    LoopNestingTracker nesting;
};

/**
 * LIT hit-ratio meter. Accessed when an iteration starts (never the first
 * iteration of an execution — the detector cannot see it, and our
 * IterStart events begin at index 2 accordingly): hit iff the loop's
 * entry is present and >= 2 iterations of it completed since insertion.
 * Entries are inserted on execution start; LRU is keyed by iteration
 * starts. Completion counts persist across executions while the entry
 * stays resident.
 */
class LitHitMeter : public LoopListener
{
  public:
    explicit LitHitMeter(size_t num_entries,
                         TableReplacement policy = TableReplacement::Lru);

    /** Event-driven only: instruction data carries no information. */
    bool consumesInstrs() const override { return false; }
    /** Table lines keyed by loop id: worth warming before dispatch. */
    bool wantsPrefetchHints() const override { return true; }
    void prefetchLoop(uint32_t loop) override
    {
        (void)loop;
        table.prefetch();
    }
    void onExecStart(const ExecStartEvent &ev) override;
    void onIterStart(const IterEvent &ev) override;
    void onIterEnd(const IterEvent &ev) override;
    void onExecEnd(const ExecEndEvent &ev) override;

    const HitRatioResult &result() const { return res; }
    size_t numEntries() const { return table.numEntries(); }

  private:
    struct Entry
    {
        uint64_t completedIters = 0;
    };

    LoopTable<Entry> table;
    HitRatioResult res;
    TableReplacement policy;
    LoopNestingTracker nesting;
};

} // namespace loopspec

#endif // LOOPSPEC_TABLES_HIT_RATIO_HH
