#include "tables/iter_predictor.hh"

namespace loopspec
{

IterCountPredictor::IterCountPredictor(size_t num_entries)
{
    if (num_entries > 0)
        bounded = std::make_unique<LoopTable<Entry>>(num_entries);
}

void
IterCountPredictor::update(Entry &e, int64_t count)
{
    if (e.hasLast) {
        int64_t stride = count - e.lastCount;
        if (e.hasStride) {
            if (stride == e.stride)
                e.confidence.up();
            else
                e.confidence.down();
        }
        e.stride = stride;
        e.hasStride = true;
    }
    e.lastCount = count;
    e.hasLast = true;
}

TripPrediction
IterCountPredictor::predictFrom(const Entry &e)
{
    if (!e.hasLast)
        return {TripPredictionKind::Unknown, 0};
    if (e.hasStride && e.confidence.confident()) {
        int64_t predicted = e.lastCount + e.stride;
        if (predicted < 1)
            predicted = 1;
        return {TripPredictionKind::Stride, predicted};
    }
    return {TripPredictionKind::LastCount, e.lastCount};
}

void
IterCountPredictor::recordExecution(uint32_t loop, uint64_t iters)
{
    int64_t count = static_cast<int64_t>(iters);
    if (bounded) {
        Entry *e = bounded->find(loop);
        if (!e)
            e = &bounded->insert(loop); // LRU eviction loses history
        bounded->touch(loop);
        update(*e, count);
        return;
    }
    update(entries[loop], count);
}

TripPrediction
IterCountPredictor::predict(uint32_t loop) const
{
    if (bounded) {
        const Entry *e = bounded->find(loop);
        if (!e)
            return {TripPredictionKind::Unknown, 0};
        return predictFrom(*e);
    }
    auto it = entries.find(loop);
    if (it == entries.end())
        return {TripPredictionKind::Unknown, 0};
    return predictFrom(it->second);
}

size_t
IterCountPredictor::trackedLoops() const
{
    return bounded ? bounded->size() : entries.size();
}

} // namespace loopspec
