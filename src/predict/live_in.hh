/**
 * @file
 * Live-in value predictors for spawned iterations (docs/DATASPEC.md).
 *
 * A thread spawned for iteration j must guess the values its iteration
 * reads before writing — registers and memory locations alike. The
 * hardware the paper's §4 sketches keeps a last-value + stride entry per
 * live-in; these two classes are that entry, factored out of the
 * DataSpecProfiler so the profiler, the property tests and the
 * ThreadSpecSimulator's data modes all share one state machine.
 *
 * State machine (both predictors): 0 = empty, 1 = have last value,
 * 2 = have last value + stride. A prediction is only offered (and only
 * counted correct) in state 2, and equals last + stride. Observing a
 * value always updates: state 1 derives the stride and promotes to 2;
 * state 0 just records the value. This is deliberately bit-identical to
 * the profiler's historical inline predictors — the Figure-8 numbers
 * must not move.
 */

#ifndef LOOPSPEC_PREDICT_LIVE_IN_HH
#define LOOPSPEC_PREDICT_LIVE_IN_HH

#include <cstdint>

namespace loopspec
{

/** Last-value + stride predictor over one live-in register. */
class LiveInPredictor
{
  public:
    /** True iff the predictor would have produced exactly @p v. */
    bool
    predictCorrect(int64_t v) const
    {
        return st == 2 && last + stride == v;
    }

    /** True once a prediction is offered (two observations seen). */
    bool hasPrediction() const { return st == 2; }

    /** The value a spawned iteration would be handed (state 2 only). */
    int64_t predicted() const { return last + stride; }

    /** Train on the live-in value an iteration actually read. */
    void
    observe(int64_t v)
    {
        if (st >= 1) {
            stride = v - last;
            st = 2;
        } else {
            st = 1;
        }
        last = v;
    }

    void
    reset()
    {
        last = 0;
        stride = 0;
        st = 0;
    }

    /** Mix the full predictor state into an FNV-1a style hash — the
     *  property tests compare this against a reference model after
     *  every update. */
    uint64_t
    stateHash() const
    {
        uint64_t h = 0xcbf29ce484222325ull;
        h = (h ^ static_cast<uint64_t>(last)) * 0x100000001b3ull;
        h = (h ^ static_cast<uint64_t>(stride)) * 0x100000001b3ull;
        h = (h ^ st) * 0x100000001b3ull;
        return h;
    }

    uint8_t state() const { return st; }
    int64_t lastValue() const { return last; }
    int64_t strideValue() const { return stride; }

  private:
    int64_t last = 0;
    int64_t stride = 0;
    uint8_t st = 0;
};

/**
 * Last-value + stride predictor over one live-in memory location (keyed
 * by static load PC): both the address and the loaded value must be
 * predicted, each with its own stride.
 */
class LiveInMemPredictor
{
  public:
    bool
    predictCorrect(uint64_t addr, int64_t val) const
    {
        return st == 2 &&
               lastAddr + static_cast<uint64_t>(addrStride) == addr &&
               lastVal + valStride == val;
    }

    bool hasPrediction() const { return st == 2; }

    void
    observe(uint64_t addr, int64_t val)
    {
        if (st >= 1) {
            addrStride = static_cast<int64_t>(addr - lastAddr);
            valStride = val - lastVal;
            st = 2;
        } else {
            st = 1;
        }
        lastAddr = addr;
        lastVal = val;
    }

    void
    reset()
    {
        lastAddr = 0;
        addrStride = 0;
        lastVal = 0;
        valStride = 0;
        st = 0;
    }

    uint64_t
    stateHash() const
    {
        uint64_t h = 0xcbf29ce484222325ull;
        h = (h ^ lastAddr) * 0x100000001b3ull;
        h = (h ^ static_cast<uint64_t>(addrStride)) * 0x100000001b3ull;
        h = (h ^ static_cast<uint64_t>(lastVal)) * 0x100000001b3ull;
        h = (h ^ static_cast<uint64_t>(valStride)) * 0x100000001b3ull;
        h = (h ^ st) * 0x100000001b3ull;
        return h;
    }

    uint8_t state() const { return st; }

  private:
    uint64_t lastAddr = 0;
    int64_t addrStride = 0;
    int64_t lastVal = 0;
    int64_t valStride = 0;
    uint8_t st = 0;
};

} // namespace loopspec

#endif // LOOPSPEC_PREDICT_LIVE_IN_HH
