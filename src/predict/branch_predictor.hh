/**
 * @file
 * Conventional branch-predictor baselines (docs/PREDICTORS.md): the
 * schemes the paper's dynamic loop detection competes against. Every
 * predictor consumes the same retired conditional-branch stream the
 * LoopDetector consumes (PC + taken-ness, in retire order) and answers
 * two questions:
 *
 *  - predict(pc): will the next retired occurrence of this branch be
 *    taken? (the accuracy question the PredictorMeter measures);
 *  - predictRun(pc, max_n): how many *consecutive* taken outcomes do
 *    you predict, chaining speculatively? (the spawn-point question the
 *    ThreadSpecSimulator's PRED policy asks at each loop-iteration
 *    start — the predictor-based analogue of the LET trip prediction).
 *
 * Implementations: BimodalPredictor (bimodal.hh), GsharePredictor
 * (gshare.hh), LocalHistoryPredictor (local.hh), StrideRunPredictor
 * (stride_run.hh), TournamentPredictor (tournament.hh),
 * TageRunLengthPredictor (tage.hh). All are deterministic pure
 * functions of their update stream, so sweep cells that own one stay
 * bit-identical across any --jobs value.
 */

#ifndef LOOPSPEC_PREDICT_BRANCH_PREDICTOR_HH
#define LOOPSPEC_PREDICT_BRANCH_PREDICTOR_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace loopspec
{

/** The implemented prediction schemes. */
enum class PredictorKind : uint8_t
{
    Bimodal,    //!< per-PC two-bit counters, no history
    Gshare,     //!< global history XOR PC into one counter table
    Local,      //!< two-level: per-PC history into a shared pattern table
    StrideRun,  //!< LET-style last+stride run lengths on the branch stream
    Tournament, //!< per-PC chooser arbitrating two component schemes
    Tage,       //!< tagged geometric run-length-history tables
};

/**
 * One predictor configuration, as written on a sweep grid's
 * `predictors=` axis:
 *
 *   bimodal[:T]      T = log2 counter-table entries       (default 12)
 *   gshare[:H[/T]]   H = global-history bits, T = log2 table entries
 *                    (default 12; T defaults to H)
 *   local[:H/L]      H = per-branch history bits (pattern table has
 *                    2^H counters), L = log2 history-table entries
 *                    (default 10/10)
 *   let[:T]          T = log2 stride-table entries        (default 10)
 *   tage[:N/a-b[/T]] N tagged tables, run-length history depths
 *                    geometrically spaced in [a, b] completed runs,
 *                    T = log2 entries per table     (default 4/2-8/10)
 *   tournament:<a>+<b>
 *                    chooser over two component specs (any of the
 *                    above; tournaments don't nest); chooser table is
 *                    2^12 two-bit counters
 */
struct PredictorConfig
{
    PredictorKind kind = PredictorKind::Bimodal;
    unsigned tableBits = 12;   //!< log2 of the counter-table entries
    unsigned historyBits = 12; //!< history width (gshare/local)
    unsigned l1Bits = 10;      //!< log2 history-table entries (local)
    unsigned tageTables = 4;   //!< tagged tables (tage)
    unsigned tageMinHist = 2;  //!< shortest history, completed runs (tage)
    unsigned tageMaxHist = 8;  //!< longest history, completed runs (tage)
    //! the two component configurations (tournament; empty otherwise)
    std::vector<PredictorConfig> components;

    bool
    operator==(const PredictorConfig &o) const
    {
        return kind == o.kind && tableBits == o.tableBits &&
               historyBits == o.historyBits && l1Bits == o.l1Bits &&
               tageTables == o.tageTables &&
               tageMinHist == o.tageMinHist &&
               tageMaxHist == o.tageMaxHist && components == o.components;
    }
    bool operator!=(const PredictorConfig &o) const
    {
        return !(*this == o);
    }
};

/** Canonical spec string ("bimodal:12", "gshare:12", "gshare:10/14",
 *  "local:10/10") — parsePredictorSpec(predictorName(c)) == c. */
std::string predictorName(const PredictorConfig &config);

/** Parse a `predictors=` axis entry (see PredictorConfig); fatal() on
 *  malformed specs or bit widths outside [1, 20]. */
PredictorConfig parsePredictorSpec(const std::string &text);

/** Non-fatal parsePredictorSpec for untrusted input (the sweep
 *  service): "" on success with *out set, else the diagnostic
 *  parsePredictorSpec would have died with. */
std::string tryParsePredictorSpec(const std::string &text,
                                  PredictorConfig *out);

/**
 * Interface every scheme implements. update() is called once per
 * retired conditional branch, in retire order — the exact stream the
 * CLS algorithm observes, so predictor and loop-detection accuracy are
 * measured against identical information.
 */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predicted direction of the next occurrence of @p pc. */
    virtual bool predict(uint32_t pc) const = 0;

    /**
     * Chained spawn-point prediction: the number of consecutive future
     * taken outcomes of @p pc the predictor commits to, capped at
     * @p max_n. History-based schemes thread a speculative history copy
     * through the chain (each predicted-taken outcome is shifted in
     * before the next lookup); the base implementation is the
     * history-less all-or-nothing answer a bimodal table gives.
     */
    virtual unsigned
    predictRun(uint32_t pc, unsigned max_n) const
    {
        return predict(pc) ? max_n : 0;
    }

    /** Retire one conditional branch: train tables, advance history. */
    virtual void update(uint32_t pc, bool taken) = 0;

    /** Forget everything (back to the power-on state). */
    virtual void reset() = 0;

    /**
     * FNV-1a digest of the complete architectural state (every counter
     * and history register). Two predictors fed the same update stream
     * must hash identically — the fuzz harness's predictor-state
     * invariant (docs/TESTING.md) compares scalar- against batch-fed
     * instances through this.
     */
    virtual uint64_t stateHash() const = 0;

    /** Counter-table entries (for table/memory accounting). */
    virtual size_t tableEntries() const = 0;
};

/** Build a predictor from its configuration. */
std::unique_ptr<BranchPredictor> makePredictor(const PredictorConfig &c);

namespace predict_detail
{

/** FNV-1a, the shared stateHash accumulator. */
inline uint64_t
fnv1aInit()
{
    return 1469598103934665603ULL;
}

inline void
fnv1aAdd(uint64_t &h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
    }
}

/** Counter-table index of a PC: instructions are instrBytes apart, so
 *  drop the always-zero low bits before masking/XORing. */
inline uint32_t
pcIndexBits(uint32_t pc)
{
    return pc >> 2;
}

/**
 * Shared remaining-run arithmetic for run-length schemes (stride_run,
 * tage): given a predicted total run length @p predicted (consecutive
 * taken outcomes before the closing not-taken) and @p cur taken
 * outcomes already observed in the current run, how many more takens do
 * we commit to, capped at @p max_n? Mirrors the STR policy's doubling
 * recovery in ThreadSpecSimulator::spawnCount: once a live run outgrows
 * its prediction, assume it runs at least as far again rather than
 * predicting an exit we already know is wrong.
 */
inline unsigned
runRemaining(int64_t predicted, uint64_t cur, unsigned max_n)
{
    if (cur > 0 && predicted <= static_cast<int64_t>(cur)) {
        if (predicted < 1)
            predicted = 1;
        while (predicted <= static_cast<int64_t>(cur))
            predicted *= 2;
    }
    int64_t rem = predicted - static_cast<int64_t>(cur);
    if (rem <= 0)
        return 0;
    return rem < static_cast<int64_t>(max_n) ? static_cast<unsigned>(rem)
                                             : max_n;
}

} // namespace predict_detail

} // namespace loopspec

#endif // LOOPSPEC_PREDICT_BRANCH_PREDICTOR_HH
