#include "predict/predictor_meter.hh"

namespace loopspec
{

PredictorMeter::PredictorMeter(
    const std::vector<PredictorConfig> &configs)
{
    preds.reserve(configs.size());
    for (const PredictorConfig &c : configs)
        preds.push_back({c, makePredictor(c), 0, 0});
}

void
PredictorMeter::onBranch(const DynInstr &d)
{
    for (Slot &s : preds) {
        ++s.lookups;
        if (s.pred->predict(d.pc) == d.taken)
            ++s.hits;
        s.pred->update(d.pc, d.taken);
    }
}

void
PredictorMeter::onInstr(const DynInstr &d)
{
    if (d.kind == CtrlKind::Branch)
        onBranch(d);
}

void
PredictorMeter::onInstrBatch(const DynInstr *instrs, size_t count)
{
    for (size_t i = 0; i < count; ++i) {
        if (instrs[i].kind == CtrlKind::Branch)
            onBranch(instrs[i]);
    }
}

void
PredictorMeter::onInstrBatchCtrl(const DynInstr *instrs, size_t count,
                                 const uint32_t *ctrl, size_t num_ctrl)
{
    (void)count;
    // The producer already knows where the transfers are; visit only
    // those slots and filter for conditional branches.
    for (size_t i = 0; i < num_ctrl; ++i) {
        const DynInstr &d = instrs[ctrl[i]];
        if (d.kind == CtrlKind::Branch)
            onBranch(d);
    }
}

std::vector<PredictorMeterResult>
PredictorMeter::results() const
{
    std::vector<PredictorMeterResult> out;
    out.reserve(preds.size());
    for (const Slot &s : preds) {
        PredictorMeterResult r;
        r.config = s.config;
        r.lookups = s.lookups;
        r.hits = s.hits;
        r.stateHash = s.pred->stateHash();
        out.push_back(r);
    }
    return out;
}

} // namespace loopspec
