/**
 * @file
 * Predictor accuracy meter over the retired conditional-branch stream —
 * the measurement side of the loop-detection-vs-predictor comparison
 * (docs/PREDICTORS.md). A TraceObserver, so it attaches to a
 * TraceEngine next to the LoopDetector and sees the identical stream;
 * the onInstrBatchCtrl fast path walks only the producer's control
 * index, keeping the batched hot path hot. Control-trace replay feeds
 * the same fields (pc, kind, taken), so a replay-derived meter is
 * bit-identical to a live one — runWorkload's --check-replay pins that.
 */

#ifndef LOOPSPEC_PREDICT_PREDICTOR_METER_HH
#define LOOPSPEC_PREDICT_PREDICTOR_METER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "predict/branch_predictor.hh"
#include "tracegen/dyn_instr.hh"

namespace loopspec
{

/** One predictor's accuracy over a trace. */
struct PredictorMeterResult
{
    PredictorConfig config;
    uint64_t lookups = 0; //!< retired conditional branches
    uint64_t hits = 0;    //!< predict(pc) matched the retired outcome
    uint64_t stateHash = 0; //!< final table digest (diff-checking)

    double
    hitPct() const
    {
        return lookups ? 100.0 * static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/**
 * Runs a battery of predictors over every retired conditional branch:
 * each is asked for its prediction, scored against the retired
 * direction, then trained with it — the standard
 * predict-at-fetch/update-at-retire accuracy methodology collapsed
 * onto the retired stream (docs/PREDICTORS.md discusses the timing).
 */
class PredictorMeter : public TraceObserver
{
  public:
    explicit PredictorMeter(const std::vector<PredictorConfig> &configs);

    // TraceObserver interface.
    void onInstr(const DynInstr &instr) override;
    void onInstrBatch(const DynInstr *instrs, size_t count) override;
    void onInstrBatchCtrl(const DynInstr *instrs, size_t count,
                          const uint32_t *ctrl,
                          size_t num_ctrl) override;

    /** Results in configuration order (stateHash filled in). */
    std::vector<PredictorMeterResult> results() const;

    size_t numPredictors() const { return preds.size(); }

  private:
    void onBranch(const DynInstr &d);

    struct Slot
    {
        PredictorConfig config;
        std::unique_ptr<BranchPredictor> pred;
        uint64_t lookups = 0;
        uint64_t hits = 0;
    };

    std::vector<Slot> preds;
};

} // namespace loopspec

#endif // LOOPSPEC_PREDICT_PREDICTOR_METER_HH
