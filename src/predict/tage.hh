/**
 * @file
 * TAGE-style run-length predictor (Seznec & Michaud 2006, re-targeted):
 * instead of predicting branch directions from global direction
 * history, the tagged geometric-history tables predict loop *trip
 * counts* directly. The per-PC history is a register of the last eight
 * completed run lengths (8 bits each); table i hashes the most recent
 * h_i of them — h_i geometrically spaced in [minHist, maxHist] — with
 * the PC into a partial-tagged entry holding a predicted run length, a
 * two-bit prediction counter, and a two-bit useful counter. The longest
 * matching table provides the prediction, falling back to the
 * alternative match while the provider's counter is still weak, and
 * allocation on a mispredict claims the first longer-history entry
 * whose useful counter has decayed to zero (docs/PREDICTORS.md).
 *
 * tests/predictor_property_test.cc holds an independent std::map
 * reference model for the tag-match, useful-counter aging, and
 * allocation policy; the hash helpers are public so the model indexes
 * identically without reimplementing the mixer.
 */

#ifndef LOOPSPEC_PREDICT_TAGE_HH
#define LOOPSPEC_PREDICT_TAGE_HH

#include <cmath>
#include <vector>

#include "predict/branch_predictor.hh"
#include "predict/sat_counter.hh"

namespace loopspec
{

class TageRunLengthPredictor : public BranchPredictor
{
  public:
    static constexpr unsigned kTagBits = 8;
    static constexpr uint32_t kTagMask = (1u << kTagBits) - 1;
    //!< run lengths clamp to one history byte
    static constexpr uint32_t kMaxHistLen = 255;

    explicit TageRunLengthPredictor(const PredictorConfig &c)
        : tableMask((1u << c.tableBits) - 1),
          histLens(historyLengths(c)),
          baseValid(size_t(1) << c.tableBits),
          baseLen(size_t(1) << c.tableBits),
          cur(size_t(1) << c.tableBits),
          hist(size_t(1) << c.tableBits),
          tables(histLens.size(),
                 std::vector<TaggedEntry>(size_t(1) << c.tableBits))
    {
    }

    /**
     * The per-table history depths (in completed runs): geometric
     * interpolation from tageMinHist to tageMaxHist, bumped to stay
     * strictly increasing. tage:4/2-8 gives {2, 3, 5, 8}.
     */
    static std::vector<unsigned>
    historyLengths(const PredictorConfig &c)
    {
        unsigned n = c.tageTables;
        std::vector<unsigned> lens(n);
        for (unsigned i = 0; i < n; ++i) {
            double h = c.tageMaxHist;
            if (n > 1) {
                double ratio = static_cast<double>(c.tageMaxHist) /
                               static_cast<double>(c.tageMinHist);
                h = c.tageMinHist *
                    std::pow(ratio, static_cast<double>(i) / (n - 1));
            }
            unsigned r = static_cast<unsigned>(std::llround(h));
            if (r < c.tageMinHist)
                r = c.tageMinHist;
            if (r > c.tageMaxHist)
                r = c.tageMaxHist;
            if (i > 0 && r <= lens[i - 1])
                r = lens[i - 1] + 1 < c.tageMaxHist ? lens[i - 1] + 1
                                                    : c.tageMaxHist;
            lens[i] = r;
        }
        return lens;
    }

    /** Table index of @p pc in tagged table @p t (pre-mask), over the
     *  most recent @p units runs of @p hist_reg. */
    static uint32_t
    tableIndex(uint32_t pc, uint64_t hist_reg, unsigned units,
               unsigned t)
    {
        uint64_t pc_idx = predict_detail::pcIndexBits(pc);
        return static_cast<uint32_t>(
            mix(histSlice(hist_reg, units) ^
                pc_idx * 0x9E3779B97F4A7C15ULL ^ t));
    }

    /** Partial tag of @p pc in tagged table @p t. */
    static uint32_t
    tableTag(uint32_t pc, uint64_t hist_reg, unsigned units, unsigned t)
    {
        uint64_t pc_idx = predict_detail::pcIndexBits(pc);
        return static_cast<uint32_t>(
                   mix(histSlice(hist_reg, units) ^
                       pc_idx * 0xC2B2AE3D27D4EB4FULL ^ (t + 0x40u))) &
               kTagMask;
    }

    bool
    predict(uint32_t pc) const override
    {
        Lookup lk = lookup(pc);
        if (lk.finalLen < 0)
            return true; // no history anywhere: assume it keeps going
        return predict_detail::runRemaining(lk.finalLen,
                                            cur[baseIndex(pc)], 1) > 0;
    }

    unsigned
    predictRun(uint32_t pc, unsigned max_n) const override
    {
        Lookup lk = lookup(pc);
        if (lk.finalLen < 0)
            return max_n;
        return predict_detail::runRemaining(lk.finalLen,
                                            cur[baseIndex(pc)], max_n);
    }

    void
    update(uint32_t pc, bool taken) override
    {
        uint32_t bi = baseIndex(pc);
        if (taken) {
            ++cur[bi];
            return;
        }

        // The not-taken outcome closes a run of length L: train the
        // provider, then (on a mispredict) allocate a longer-history
        // entry, then retire the run into base table and history.
        uint32_t len = cur[bi];
        Lookup lk = lookup(pc);

        if (lk.provider >= 0) {
            TaggedEntry &e = tables[lk.provider][lk.providerSlot];
            // Useful counter: credit the provider only where it beat
            // the alternative (and debit where the alternative beat it).
            if (lk.altLen >= 0 && lk.providerLen != lk.altLen) {
                if (lk.providerLen == static_cast<int64_t>(len))
                    e.u.up();
                else if (lk.altLen == static_cast<int64_t>(len))
                    e.u.down();
            }
            if (e.len == len)
                e.ctr.up();
            else if (e.ctr.value() > 0)
                e.ctr.down();
            else
                e.len = len; // confidence exhausted: relearn in place
        }

        if (lk.finalLen != static_cast<int64_t>(len)) {
            // Mispredicted run length: claim the first longer-history
            // slot whose useful counter has decayed to zero; if none
            // has, age them all so a repeat offender eventually wins.
            uint64_t h = hist[bi];
            bool allocated = false;
            for (unsigned t = lk.provider + 1; t < tables.size(); ++t) {
                uint32_t idx =
                    tableIndex(pc, h, histLens[t], t) & tableMask;
                TaggedEntry &e = tables[t][idx];
                if (!e.valid || e.u.value() == 0) {
                    e.valid = true;
                    e.tag = static_cast<uint16_t>(
                        tableTag(pc, h, histLens[t], t));
                    e.len = len;
                    e.ctr = SatCounter<2>(1); // weak: alt path covers it
                    e.u = SatCounter<2>(0);
                    allocated = true;
                    break;
                }
            }
            if (!allocated) {
                for (unsigned t = lk.provider + 1; t < tables.size();
                     ++t) {
                    uint32_t idx =
                        tableIndex(pc, h, histLens[t], t) & tableMask;
                    tables[t][idx].u.down();
                }
            }
        }

        baseValid[bi] = 1;
        baseLen[bi] = len;
        hist[bi] = (hist[bi] << 8) |
                   (len > kMaxHistLen ? kMaxHistLen : len);
        cur[bi] = 0;
    }

    void
    reset() override
    {
        baseValid.assign(baseValid.size(), 0);
        baseLen.assign(baseLen.size(), 0);
        cur.assign(cur.size(), 0);
        hist.assign(hist.size(), 0);
        for (auto &table : tables)
            table.assign(table.size(), TaggedEntry());
    }

    uint64_t
    stateHash() const override
    {
        // Documented fold order (the reference model reimplements it):
        // per base slot valid/len/cur/hist, then each tagged table's
        // valid/tag/len/ctr/u in slot order.
        uint64_t h = predict_detail::fnv1aInit();
        for (size_t i = 0; i < baseLen.size(); ++i) {
            predict_detail::fnv1aAdd(h, baseValid[i]);
            predict_detail::fnv1aAdd(h, baseLen[i]);
            predict_detail::fnv1aAdd(h, cur[i]);
            predict_detail::fnv1aAdd(h, hist[i]);
        }
        for (const auto &table : tables) {
            for (const TaggedEntry &e : table) {
                predict_detail::fnv1aAdd(h, e.valid);
                predict_detail::fnv1aAdd(h, e.tag);
                predict_detail::fnv1aAdd(h, e.len);
                predict_detail::fnv1aAdd(h, e.ctr.value());
                predict_detail::fnv1aAdd(h, e.u.value());
            }
        }
        return h;
    }

    size_t
    tableEntries() const override
    {
        return (1 + tables.size()) * baseLen.size();
    }

  private:
    struct TaggedEntry
    {
        uint8_t valid = 0;
        uint16_t tag = 0;
        uint32_t len = 0;     //!< predicted run length
        SatCounter<2> ctr;    //!< prediction confidence
        SatCounter<2> u;      //!< useful (allocation victim filter)
    };

    struct Lookup
    {
        int provider = -1; //!< longest-history tag match, -1 = none
        uint32_t providerSlot = 0;
        int64_t providerLen = -1;
        int64_t altLen = -1;   //!< next match, else base, else unknown
        int64_t finalLen = -1; //!< after weak-provider alt substitution
    };

    /** splitmix64 finalizer: the shared index/tag mixer. */
    static uint64_t
    mix(uint64_t x)
    {
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ULL;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBULL;
        x ^= x >> 31;
        return x;
    }

    /** The most recent @p units run lengths of @p hist_reg. */
    static uint64_t
    histSlice(uint64_t hist_reg, unsigned units)
    {
        return units >= 8 ? hist_reg
                          : hist_reg & ((1ULL << (8 * units)) - 1);
    }

    uint32_t
    baseIndex(uint32_t pc) const
    {
        return predict_detail::pcIndexBits(pc) & tableMask;
    }

    Lookup
    lookup(uint32_t pc) const
    {
        uint32_t bi = baseIndex(pc);
        uint64_t h = hist[bi];
        Lookup lk;
        for (int t = static_cast<int>(tables.size()) - 1; t >= 0; --t) {
            uint32_t idx =
                tableIndex(pc, h, histLens[t], t) & tableMask;
            const TaggedEntry &e = tables[t][idx];
            if (e.valid && e.tag == tableTag(pc, h, histLens[t], t)) {
                if (lk.provider < 0) {
                    lk.provider = t;
                    lk.providerSlot = idx;
                    lk.providerLen = e.len;
                } else {
                    lk.altLen = e.len;
                    break;
                }
            }
        }
        if (lk.altLen < 0 && baseValid[bi])
            lk.altLen = baseLen[bi];
        if (lk.provider < 0)
            lk.finalLen = lk.altLen;
        else if (!tables[lk.provider][lk.providerSlot].ctr.confident() &&
                 lk.altLen >= 0)
            lk.finalLen = lk.altLen; // altmatch while provider is weak
        else
            lk.finalLen = lk.providerLen;
        return lk;
    }

    uint32_t tableMask;
    std::vector<unsigned> histLens;
    std::vector<uint8_t> baseValid;
    std::vector<uint32_t> baseLen;  //!< tagless base: last run length
    std::vector<uint32_t> cur;      //!< takens in the current run
    std::vector<uint64_t> hist;     //!< packed last-8-run-lengths
    std::vector<std::vector<TaggedEntry>> tables;
};

} // namespace loopspec

#endif // LOOPSPEC_PREDICT_TAGE_HH
