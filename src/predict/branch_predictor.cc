#include "predict/branch_predictor.hh"

#include "predict/bimodal.hh"
#include "predict/gshare.hh"
#include "predict/local.hh"
#include "predict/stride_run.hh"
#include "predict/tage.hh"
#include "predict/tournament.hh"
#include "util/logging.hh"

namespace loopspec
{

namespace
{

constexpr unsigned kMinBits = 1;
constexpr unsigned kMaxBits = 20; //!< 2^20 counters = 256 KiB, plenty
constexpr unsigned kMaxTageTables = 8;
constexpr unsigned kMaxTageHist = 8; //!< one packed history register

std::string
tryParseNum(const std::string &text, const char *what, unsigned lo,
            unsigned hi, unsigned *out)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return strprintf("predictor spec: malformed %s '%s'", what,
                         text.c_str());
    unsigned long v;
    try {
        v = std::stoul(text);
    } catch (const std::exception &) {
        return strprintf("predictor spec: malformed %s '%s'", what,
                         text.c_str());
    }
    if (v < lo || v > hi) {
        return strprintf("predictor spec: %s %lu outside [%u, %u]", what,
                         v, lo, hi);
    }
    *out = static_cast<unsigned>(v);
    return "";
}

std::string
tryParseBits(const std::string &text, const char *what, unsigned *out)
{
    return tryParseNum(text, what, kMinBits, kMaxBits, out);
}

/** Split on @p sep keeping empty fields, so trailing or doubled
 *  separators ("gshare:12/", "tage:4//8") surface as malformed fields
 *  instead of silently parsing as the shorter form. */
std::vector<std::string>
splitFields(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (;;) {
        size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

} // namespace

std::string
predictorName(const PredictorConfig &c)
{
    switch (c.kind) {
      case PredictorKind::Bimodal:
        return strprintf("bimodal:%u", c.tableBits);
      case PredictorKind::Gshare:
        if (c.tableBits == c.historyBits)
            return strprintf("gshare:%u", c.historyBits);
        return strprintf("gshare:%u/%u", c.historyBits, c.tableBits);
      case PredictorKind::Local:
        return strprintf("local:%u/%u", c.historyBits, c.l1Bits);
      case PredictorKind::StrideRun:
        return strprintf("let:%u", c.tableBits);
      case PredictorKind::Tage:
        if (c.tableBits == 10)
            return strprintf("tage:%u/%u-%u", c.tageTables,
                             c.tageMinHist, c.tageMaxHist);
        return strprintf("tage:%u/%u-%u/%u", c.tageTables, c.tageMinHist,
                         c.tageMaxHist, c.tableBits);
      case PredictorKind::Tournament:
        return "tournament:" + predictorName(c.components.at(0)) + "+" +
               predictorName(c.components.at(1));
      default:
        panic("bad PredictorKind");
    }
}

std::string
tryParsePredictorSpec(const std::string &text, PredictorConfig *out)
{
    std::string scheme = text;
    std::string params;
    bool has_params = false;
    size_t colon = text.find(':');
    if (colon != std::string::npos) {
        scheme = text.substr(0, colon);
        params = text.substr(colon + 1);
        has_params = true;
        if (params.empty())
            return strprintf("predictor spec '%s': empty parameter list",
                             text.c_str());
    }

    std::string err;
    PredictorConfig c;

    if (scheme == "tournament") {
        // tournament:<a>+<b> — the components are full specs of their
        // own, so they are parsed recursively, before any '/' handling.
        c.kind = PredictorKind::Tournament;
        c.tableBits = 12; // chooser-table entries
        size_t plus = params.find('+');
        if (!has_params || plus == std::string::npos || plus == 0 ||
            plus + 1 >= params.size())
            return strprintf("predictor spec '%s': tournament needs two "
                             "components (tournament:<a>+<b>)",
                             text.c_str());
        c.components.resize(2);
        err = tryParsePredictorSpec(params.substr(0, plus),
                                    &c.components[0]);
        if (!err.empty())
            return err;
        err = tryParsePredictorSpec(params.substr(plus + 1),
                                    &c.components[1]);
        if (!err.empty())
            return err;
        for (const PredictorConfig &comp : c.components) {
            if (comp.kind == PredictorKind::Tournament)
                return strprintf("predictor spec '%s': tournament "
                                 "components must not nest",
                                 text.c_str());
        }
        *out = c;
        return "";
    }

    std::vector<std::string> fields;
    if (has_params) {
        fields = splitFields(params, '/');
        for (const std::string &f : fields) {
            if (f.empty())
                return strprintf(
                    "predictor spec '%s': empty parameter field",
                    text.c_str());
        }
    }

    if (scheme == "bimodal") {
        c.kind = PredictorKind::Bimodal;
        if (fields.size() > 1)
            return strprintf("predictor spec '%s': bimodal takes one "
                             "parameter (bimodal[:tableBits])",
                             text.c_str());
        if (!fields.empty()) {
            err = tryParseBits(fields[0], "table bits", &c.tableBits);
            if (!err.empty())
                return err;
        }
    } else if (scheme == "gshare") {
        c.kind = PredictorKind::Gshare;
        if (fields.size() > 2)
            return strprintf("predictor spec '%s': gshare takes at most "
                             "two parameters (gshare[:histBits[/"
                             "tableBits]])",
                             text.c_str());
        if (!fields.empty()) {
            err = tryParseBits(fields[0], "history bits",
                               &c.historyBits);
            if (!err.empty())
                return err;
            if (fields.size() == 2) {
                err = tryParseBits(fields[1], "table bits",
                                   &c.tableBits);
                if (!err.empty())
                    return err;
            } else {
                c.tableBits = c.historyBits;
            }
        }
    } else if (scheme == "local") {
        c.kind = PredictorKind::Local;
        if (!fields.empty() && fields.size() != 2)
            return strprintf("predictor spec '%s': local needs "
                             "historyBits/l1Bits (e.g. local:10/10)",
                             text.c_str());
        if (!fields.empty()) {
            err = tryParseBits(fields[0], "history bits",
                               &c.historyBits);
            if (!err.empty())
                return err;
            err = tryParseBits(fields[1], "history-table bits",
                               &c.l1Bits);
            if (!err.empty())
                return err;
        } else {
            c.historyBits = 10;
            c.l1Bits = 10;
        }
        c.tableBits = c.historyBits; // pattern table is history-indexed
    } else if (scheme == "let") {
        c.kind = PredictorKind::StrideRun;
        c.tableBits = 10;
        if (fields.size() > 1)
            return strprintf("predictor spec '%s': let takes one "
                             "parameter (let[:tableBits])",
                             text.c_str());
        if (!fields.empty()) {
            err = tryParseBits(fields[0], "table bits", &c.tableBits);
            if (!err.empty())
                return err;
        }
    } else if (scheme == "tage") {
        c.kind = PredictorKind::Tage;
        c.tableBits = 10;
        if (!fields.empty() &&
            (fields.size() < 2 || fields.size() > 3))
            return strprintf("predictor spec '%s': tage needs "
                             "numTables/minHist-maxHist[/tableBits] "
                             "(e.g. tage:4/2-8)",
                             text.c_str());
        if (!fields.empty()) {
            err = tryParseNum(fields[0], "tage table count", 1,
                              kMaxTageTables, &c.tageTables);
            if (!err.empty())
                return err;
            std::vector<std::string> range =
                splitFields(fields[1], '-');
            if (range.size() != 2 || range[0].empty() ||
                range[1].empty())
                return strprintf("predictor spec '%s': malformed tage "
                                 "history range '%s' (want "
                                 "minHist-maxHist)",
                                 text.c_str(), fields[1].c_str());
            err = tryParseNum(range[0], "tage min history", 1,
                              kMaxTageHist, &c.tageMinHist);
            if (!err.empty())
                return err;
            err = tryParseNum(range[1], "tage max history", 1,
                              kMaxTageHist, &c.tageMaxHist);
            if (!err.empty())
                return err;
            if (c.tageMinHist > c.tageMaxHist)
                return strprintf("predictor spec '%s': tage history "
                                 "range %u-%u has min > max",
                                 text.c_str(), c.tageMinHist,
                                 c.tageMaxHist);
            if (fields.size() == 3) {
                err = tryParseBits(fields[2], "table bits",
                                   &c.tableBits);
                if (!err.empty())
                    return err;
            }
        }
    } else {
        return strprintf(
            "unknown predictor scheme '%s' "
            "(want bimodal|gshare|local|let|tage|tournament)",
            scheme.c_str());
    }
    *out = c;
    return "";
}

PredictorConfig
parsePredictorSpec(const std::string &text)
{
    PredictorConfig c;
    std::string err = tryParsePredictorSpec(text, &c);
    if (!err.empty())
        fatal("%s", err.c_str());
    return c;
}

std::unique_ptr<BranchPredictor>
makePredictor(const PredictorConfig &c)
{
    switch (c.kind) {
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(c);
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>(c);
      case PredictorKind::Local:
        return std::make_unique<LocalHistoryPredictor>(c);
      case PredictorKind::StrideRun:
        return std::make_unique<StrideRunPredictor>(c);
      case PredictorKind::Tage:
        return std::make_unique<TageRunLengthPredictor>(c);
      case PredictorKind::Tournament:
        return std::make_unique<TournamentPredictor>(c);
      default:
        panic("bad PredictorKind");
    }
}

} // namespace loopspec
