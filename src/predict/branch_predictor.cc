#include "predict/branch_predictor.hh"

#include "predict/bimodal.hh"
#include "predict/gshare.hh"
#include "predict/local.hh"
#include "util/logging.hh"

namespace loopspec
{

namespace
{

constexpr unsigned kMinBits = 1;
constexpr unsigned kMaxBits = 20; //!< 2^20 counters = 256 KiB, plenty

std::string
tryParseBits(const std::string &text, const char *what, unsigned *out)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        return strprintf("predictor spec: malformed %s '%s'", what,
                         text.c_str());
    unsigned long v;
    try {
        v = std::stoul(text);
    } catch (const std::exception &) {
        return strprintf("predictor spec: malformed %s '%s'", what,
                         text.c_str());
    }
    if (v < kMinBits || v > kMaxBits) {
        return strprintf("predictor spec: %s %lu outside [%u, %u]", what,
                         v, kMinBits, kMaxBits);
    }
    *out = static_cast<unsigned>(v);
    return "";
}

} // namespace

std::string
predictorName(const PredictorConfig &c)
{
    switch (c.kind) {
      case PredictorKind::Bimodal:
        return strprintf("bimodal:%u", c.tableBits);
      case PredictorKind::Gshare:
        if (c.tableBits == c.historyBits)
            return strprintf("gshare:%u", c.historyBits);
        return strprintf("gshare:%u/%u", c.historyBits, c.tableBits);
      case PredictorKind::Local:
        return strprintf("local:%u/%u", c.historyBits, c.l1Bits);
      default:
        panic("bad PredictorKind");
    }
}

std::string
tryParsePredictorSpec(const std::string &text, PredictorConfig *out)
{
    std::string scheme = text;
    std::string params;
    size_t colon = text.find(':');
    if (colon != std::string::npos) {
        scheme = text.substr(0, colon);
        params = text.substr(colon + 1);
        if (params.empty())
            return strprintf("predictor spec '%s': empty parameter list",
                             text.c_str());
    }

    std::string first = params;
    std::string second;
    size_t slash = params.find('/');
    if (slash != std::string::npos) {
        first = params.substr(0, slash);
        second = params.substr(slash + 1);
    }

    std::string err;
    PredictorConfig c;
    if (scheme == "bimodal") {
        c.kind = PredictorKind::Bimodal;
        if (!second.empty())
            return strprintf("predictor spec '%s': bimodal takes one "
                             "parameter (bimodal[:tableBits])",
                             text.c_str());
        if (!first.empty()) {
            err = tryParseBits(first, "table bits", &c.tableBits);
            if (!err.empty())
                return err;
        }
    } else if (scheme == "gshare") {
        c.kind = PredictorKind::Gshare;
        if (!first.empty()) {
            err = tryParseBits(first, "history bits", &c.historyBits);
            if (!err.empty())
                return err;
            if (second.empty()) {
                c.tableBits = c.historyBits;
            } else {
                err = tryParseBits(second, "table bits", &c.tableBits);
                if (!err.empty())
                    return err;
            }
        }
    } else if (scheme == "local") {
        c.kind = PredictorKind::Local;
        if (!first.empty()) {
            if (second.empty())
                return strprintf("predictor spec '%s': local needs "
                                 "historyBits/l1Bits (e.g. local:10/10)",
                                 text.c_str());
            err = tryParseBits(first, "history bits", &c.historyBits);
            if (!err.empty())
                return err;
            err = tryParseBits(second, "history-table bits", &c.l1Bits);
            if (!err.empty())
                return err;
        } else {
            c.historyBits = 10;
            c.l1Bits = 10;
        }
        c.tableBits = c.historyBits; // pattern table is history-indexed
    } else {
        return strprintf("unknown predictor scheme '%s' "
                         "(want bimodal|gshare|local)",
                         scheme.c_str());
    }
    *out = c;
    return "";
}

PredictorConfig
parsePredictorSpec(const std::string &text)
{
    PredictorConfig c;
    std::string err = tryParsePredictorSpec(text, &c);
    if (!err.empty())
        fatal("%s", err.c_str());
    return c;
}

std::unique_ptr<BranchPredictor>
makePredictor(const PredictorConfig &c)
{
    switch (c.kind) {
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(c);
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>(c);
      case PredictorKind::Local:
        return std::make_unique<LocalHistoryPredictor>(c);
      default:
        panic("bad PredictorKind");
    }
}

} // namespace loopspec
