#include "predict/branch_predictor.hh"

#include "predict/bimodal.hh"
#include "predict/gshare.hh"
#include "predict/local.hh"
#include "util/logging.hh"

namespace loopspec
{

namespace
{

constexpr unsigned kMinBits = 1;
constexpr unsigned kMaxBits = 20; //!< 2^20 counters = 256 KiB, plenty

unsigned
parseBits(const std::string &text, const char *what)
{
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        fatal("predictor spec: malformed %s '%s'", what, text.c_str());
    unsigned long v;
    try {
        v = std::stoul(text);
    } catch (const std::exception &) {
        fatal("predictor spec: malformed %s '%s'", what, text.c_str());
    }
    if (v < kMinBits || v > kMaxBits) {
        fatal("predictor spec: %s %lu outside [%u, %u]", what, v,
              kMinBits, kMaxBits);
    }
    return static_cast<unsigned>(v);
}

} // namespace

std::string
predictorName(const PredictorConfig &c)
{
    switch (c.kind) {
      case PredictorKind::Bimodal:
        return strprintf("bimodal:%u", c.tableBits);
      case PredictorKind::Gshare:
        if (c.tableBits == c.historyBits)
            return strprintf("gshare:%u", c.historyBits);
        return strprintf("gshare:%u/%u", c.historyBits, c.tableBits);
      case PredictorKind::Local:
        return strprintf("local:%u/%u", c.historyBits, c.l1Bits);
      default:
        panic("bad PredictorKind");
    }
}

PredictorConfig
parsePredictorSpec(const std::string &text)
{
    std::string scheme = text;
    std::string params;
    size_t colon = text.find(':');
    if (colon != std::string::npos) {
        scheme = text.substr(0, colon);
        params = text.substr(colon + 1);
        if (params.empty())
            fatal("predictor spec '%s': empty parameter list",
                  text.c_str());
    }

    std::string first = params;
    std::string second;
    size_t slash = params.find('/');
    if (slash != std::string::npos) {
        first = params.substr(0, slash);
        second = params.substr(slash + 1);
    }

    PredictorConfig c;
    if (scheme == "bimodal") {
        c.kind = PredictorKind::Bimodal;
        if (!second.empty())
            fatal("predictor spec '%s': bimodal takes one parameter "
                  "(bimodal[:tableBits])",
                  text.c_str());
        if (!first.empty())
            c.tableBits = parseBits(first, "table bits");
    } else if (scheme == "gshare") {
        c.kind = PredictorKind::Gshare;
        if (!first.empty()) {
            c.historyBits = parseBits(first, "history bits");
            c.tableBits = second.empty()
                              ? c.historyBits
                              : parseBits(second, "table bits");
        }
    } else if (scheme == "local") {
        c.kind = PredictorKind::Local;
        if (!first.empty()) {
            if (second.empty())
                fatal("predictor spec '%s': local needs "
                      "historyBits/l1Bits (e.g. local:10/10)",
                      text.c_str());
            c.historyBits = parseBits(first, "history bits");
            c.l1Bits = parseBits(second, "history-table bits");
        } else {
            c.historyBits = 10;
            c.l1Bits = 10;
        }
        c.tableBits = c.historyBits; // pattern table is history-indexed
    } else {
        fatal("unknown predictor scheme '%s' "
              "(want bimodal|gshare|local)",
              scheme.c_str());
    }
    return c;
}

std::unique_ptr<BranchPredictor>
makePredictor(const PredictorConfig &c)
{
    switch (c.kind) {
      case PredictorKind::Bimodal:
        return std::make_unique<BimodalPredictor>(c);
      case PredictorKind::Gshare:
        return std::make_unique<GsharePredictor>(c);
      case PredictorKind::Local:
        return std::make_unique<LocalHistoryPredictor>(c);
      default:
        panic("bad PredictorKind");
    }
}

} // namespace loopspec
