/**
 * @file
 * Stride run-length predictor: the LET trip-count predictor (§3.1.2,
 * tables/iter_predictor.hh) recast as a BranchPredictor so it can slot
 * into the tournament chooser and the predictors= sweep axis. Instead
 * of recording completed loop executions it watches the retired branch
 * stream directly: a "run" is a maximal sequence of consecutive taken
 * outcomes of one PC, and the entry predicts the next run's length as
 * last + stride with two-bit stride confidence — exactly the LET
 * payload, minus the trip counts LET also learns from Exit/Return-
 * terminated executions (docs/PREDICTORS.md).
 */

#ifndef LOOPSPEC_PREDICT_STRIDE_RUN_HH
#define LOOPSPEC_PREDICT_STRIDE_RUN_HH

#include <vector>

#include "predict/branch_predictor.hh"
#include "predict/sat_counter.hh"

namespace loopspec
{

class StrideRunPredictor : public BranchPredictor
{
  public:
    explicit StrideRunPredictor(const PredictorConfig &c)
        : mask((1u << c.tableBits) - 1), table(size_t(1) << c.tableBits)
    {
    }

    bool
    predict(uint32_t pc) const override
    {
        const Entry &e = table[index(pc)];
        if (!e.valid || e.pc != pc || !e.hasLen)
            return true; // unknown loop: assume it keeps iterating
        return predict_detail::runRemaining(predictedTotal(e), e.cur, 1) >
               0;
    }

    unsigned
    predictRun(uint32_t pc, unsigned max_n) const override
    {
        const Entry &e = table[index(pc)];
        if (!e.valid || e.pc != pc || !e.hasLen)
            return max_n; // unknown: aggressive, like STR's Unknown case
        return predict_detail::runRemaining(predictedTotal(e), e.cur,
                                            max_n);
    }

    void
    update(uint32_t pc, bool taken) override
    {
        Entry &e = table[index(pc)];
        if (!e.valid || e.pc != pc) {
            e = Entry();
            e.pc = pc;
            e.valid = true;
        }
        if (taken) {
            ++e.cur;
            return;
        }
        // Not-taken closes the run: train last + stride on its length,
        // mirroring IterCountPredictor::update on iteration counts.
        int64_t len = static_cast<int64_t>(e.cur);
        if (e.hasLen) {
            int64_t stride = len - e.lastLen;
            if (e.hasStride) {
                if (stride == e.stride)
                    e.conf.up();
                else
                    e.conf.down();
            }
            e.stride = stride;
            e.hasStride = true;
        }
        e.lastLen = len;
        e.hasLen = true;
        e.cur = 0;
    }

    void
    reset() override
    {
        table.assign(table.size(), Entry());
    }

    uint64_t
    stateHash() const override
    {
        uint64_t h = predict_detail::fnv1aInit();
        for (const Entry &e : table) {
            predict_detail::fnv1aAdd(h, e.valid);
            predict_detail::fnv1aAdd(h, e.pc);
            predict_detail::fnv1aAdd(h, e.cur);
            predict_detail::fnv1aAdd(h,
                                     static_cast<uint64_t>(e.lastLen));
            predict_detail::fnv1aAdd(h, static_cast<uint64_t>(e.stride));
            predict_detail::fnv1aAdd(h, e.hasLen);
            predict_detail::fnv1aAdd(h, e.hasStride);
            predict_detail::fnv1aAdd(h, e.conf.value());
        }
        return h;
    }

    size_t tableEntries() const override { return table.size(); }

  private:
    struct Entry
    {
        uint32_t pc = 0; //!< full-PC tag (direct-mapped, no aliasing)
        bool valid = false;
        uint32_t cur = 0; //!< taken outcomes in the current run
        int64_t lastLen = 0;
        int64_t stride = 0;
        bool hasLen = false;
        bool hasStride = false;
        SatCounter<2> conf;
    };

    static int64_t
    predictedTotal(const Entry &e)
    {
        if (e.hasStride && e.conf.confident()) {
            int64_t predicted = e.lastLen + e.stride;
            return predicted < 0 ? 0 : predicted;
        }
        return e.lastLen;
    }

    uint32_t
    index(uint32_t pc) const
    {
        return predict_detail::pcIndexBits(pc) & mask;
    }

    uint32_t mask;
    std::vector<Entry> table;
};

} // namespace loopspec

#endif // LOOPSPEC_PREDICT_STRIDE_RUN_HH
