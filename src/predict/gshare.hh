/**
 * @file
 * Gshare branch predictor (McFarling 1993): a global branch-history
 * register XORed with the PC indexes one shared table of two-bit
 * counters. Captures cross-branch correlation — including "the loop
 * branch was taken N times, the N+1st is the exit" patterns for loops
 * with constant trip counts shorter than the history width — which is
 * exactly the regime where it competes with the LET stride predictor
 * (docs/PREDICTORS.md).
 */

#ifndef LOOPSPEC_PREDICT_GSHARE_HH
#define LOOPSPEC_PREDICT_GSHARE_HH

#include <vector>

#include "predict/branch_predictor.hh"
#include "predict/sat_counter.hh"

namespace loopspec
{

class GsharePredictor : public BranchPredictor
{
  public:
    explicit GsharePredictor(const PredictorConfig &c)
        : tableMask((1u << c.tableBits) - 1),
          histMask(c.historyBits >= 32
                       ? ~0u
                       : (1u << c.historyBits) - 1),
          table(size_t(1) << c.tableBits)
    {
    }

    bool
    predict(uint32_t pc) const override
    {
        return table[index(pc, history)].confident();
    }

    unsigned
    predictRun(uint32_t pc, unsigned max_n) const override
    {
        // Chain with a speculative history copy: each predicted-taken
        // outcome is shifted in before the next lookup, as a real
        // front-end would speculatively update its GHR. The chain stops
        // at the first predicted not-taken outcome (the predicted loop
        // exit).
        uint32_t h = history;
        unsigned n = 0;
        while (n < max_n && table[index(pc, h)].confident()) {
            h = push(h, true);
            ++n;
        }
        return n;
    }

    void
    update(uint32_t pc, bool taken) override
    {
        SatCounter<2> &ctr = table[index(pc, history)];
        if (taken)
            ctr.up();
        else
            ctr.down();
        history = push(history, taken);
    }

    void
    reset() override
    {
        table.assign(table.size(), SatCounter<2>());
        history = 0;
    }

    uint64_t
    stateHash() const override
    {
        uint64_t h = predict_detail::fnv1aInit();
        predict_detail::fnv1aAdd(h, history);
        for (const SatCounter<2> &c : table)
            predict_detail::fnv1aAdd(h, c.value());
        return h;
    }

    size_t tableEntries() const override { return table.size(); }

  private:
    uint32_t
    index(uint32_t pc, uint32_t hist) const
    {
        return (predict_detail::pcIndexBits(pc) ^ hist) & tableMask;
    }

    uint32_t
    push(uint32_t hist, bool taken) const
    {
        return ((hist << 1) | (taken ? 1u : 0u)) & histMask;
    }

    uint32_t tableMask;
    uint32_t histMask;
    uint32_t history = 0;
    std::vector<SatCounter<2>> table;
};

} // namespace loopspec

#endif // LOOPSPEC_PREDICT_GSHARE_HH
