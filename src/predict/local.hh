/**
 * @file
 * Two-level local-history branch predictor (Yeh & Patt 1991, the PAg
 * organisation): a first-level table of per-branch history registers
 * (indexed by PC) selects a counter in a shared second-level pattern
 * table (indexed by the history value). A loop branch with a constant
 * trip count shorter than the history width becomes perfectly
 * predictable — the local analogue of what the LET's stride predictor
 * achieves with two table entries' worth of state (docs/PREDICTORS.md).
 */

#ifndef LOOPSPEC_PREDICT_LOCAL_HH
#define LOOPSPEC_PREDICT_LOCAL_HH

#include <vector>

#include "predict/branch_predictor.hh"
#include "predict/sat_counter.hh"

namespace loopspec
{

class LocalHistoryPredictor : public BranchPredictor
{
  public:
    explicit LocalHistoryPredictor(const PredictorConfig &c)
        : l1Mask((1u << c.l1Bits) - 1),
          histMask(c.historyBits >= 32
                       ? ~0u
                       : (1u << c.historyBits) - 1),
          histories(size_t(1) << c.l1Bits),
          pattern(size_t(1) << c.historyBits)
    {
    }

    bool
    predict(uint32_t pc) const override
    {
        return pattern[histories[l1Index(pc)]].confident();
    }

    unsigned
    predictRun(uint32_t pc, unsigned max_n) const override
    {
        // Chain through a speculative copy of this branch's local
        // history; stop at the first predicted not-taken outcome.
        uint32_t h = histories[l1Index(pc)];
        unsigned n = 0;
        while (n < max_n && pattern[h].confident()) {
            h = push(h, true);
            ++n;
        }
        return n;
    }

    void
    update(uint32_t pc, bool taken) override
    {
        uint32_t &h = histories[l1Index(pc)];
        SatCounter<2> &ctr = pattern[h];
        if (taken)
            ctr.up();
        else
            ctr.down();
        h = push(h, taken);
    }

    void
    reset() override
    {
        histories.assign(histories.size(), 0);
        pattern.assign(pattern.size(), SatCounter<2>());
    }

    uint64_t
    stateHash() const override
    {
        uint64_t h = predict_detail::fnv1aInit();
        for (uint32_t hist : histories)
            predict_detail::fnv1aAdd(h, hist);
        for (const SatCounter<2> &c : pattern)
            predict_detail::fnv1aAdd(h, c.value());
        return h;
    }

    size_t tableEntries() const override { return pattern.size(); }

  private:
    uint32_t
    l1Index(uint32_t pc) const
    {
        return predict_detail::pcIndexBits(pc) & l1Mask;
    }

    uint32_t
    push(uint32_t hist, bool taken) const
    {
        return ((hist << 1) | (taken ? 1u : 0u)) & histMask;
    }

    uint32_t l1Mask;
    uint32_t histMask;
    std::vector<uint32_t> histories;
    std::vector<SatCounter<2>> pattern;
};

} // namespace loopspec

#endif // LOOPSPEC_PREDICT_LOCAL_HH
