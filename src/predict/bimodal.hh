/**
 * @file
 * Bimodal branch predictor (Smith 1981; surveyed for multithreaded
 * processors by Durbhakula 2019): a direct-mapped table of two-bit
 * saturating counters indexed by PC. No history — the baseline every
 * other scheme is measured against, and the scheme loop-detection
 * beats most clearly on loops with data-dependent trip counts
 * (docs/PREDICTORS.md).
 */

#ifndef LOOPSPEC_PREDICT_BIMODAL_HH
#define LOOPSPEC_PREDICT_BIMODAL_HH

#include <vector>

#include "predict/branch_predictor.hh"
#include "predict/sat_counter.hh"

namespace loopspec
{

class BimodalPredictor : public BranchPredictor
{
  public:
    explicit BimodalPredictor(const PredictorConfig &c)
        : mask((1u << c.tableBits) - 1), table(size_t(1) << c.tableBits)
    {
    }

    bool
    predict(uint32_t pc) const override
    {
        return table[index(pc)].confident();
    }

    // predictRun: the base-class all-or-nothing answer is exact here —
    // with no history, every chained lookup of the same PC reads the
    // same counter.

    void
    update(uint32_t pc, bool taken) override
    {
        SatCounter<2> &ctr = table[index(pc)];
        if (taken)
            ctr.up();
        else
            ctr.down();
    }

    void
    reset() override
    {
        table.assign(table.size(), SatCounter<2>());
    }

    uint64_t
    stateHash() const override
    {
        uint64_t h = predict_detail::fnv1aInit();
        for (const SatCounter<2> &c : table)
            predict_detail::fnv1aAdd(h, c.value());
        return h;
    }

    size_t tableEntries() const override { return table.size(); }

  private:
    uint32_t
    index(uint32_t pc) const
    {
        return predict_detail::pcIndexBits(pc) & mask;
    }

    uint32_t mask;
    std::vector<SatCounter<2>> table;
};

} // namespace loopspec

#endif // LOOPSPEC_PREDICT_BIMODAL_HH
