/**
 * @file
 * Tournament predictor (McFarling 1993 combining predictors, per-loop
 * flavour): a direct-mapped table of two-bit choosers indexed by branch
 * PC arbitrates between two component BranchPredictors — in the
 * configuration this repo cares about, the LET stride run-length path
 * (stride_run.hh) against a conventional direction scheme. The chooser
 * is consulted once per prediction and the chosen component answers
 * predictRun() wholesale, so spawn-point predictions stay all-or-
 * nothing: a chain never mixes two components' extrapolations
 * (docs/PREDICTORS.md).
 */

#ifndef LOOPSPEC_PREDICT_TOURNAMENT_HH
#define LOOPSPEC_PREDICT_TOURNAMENT_HH

#include <utility>
#include <vector>

#include "predict/branch_predictor.hh"
#include "predict/sat_counter.hh"

namespace loopspec
{

class TournamentPredictor : public BranchPredictor
{
  public:
    explicit TournamentPredictor(const PredictorConfig &c)
        : TournamentPredictor(c, makePredictor(c.components.at(0)),
                              makePredictor(c.components.at(1)))
    {
    }

    /** Test seam: inject hand-built components (chooser geometry still
     *  comes from @p c). Counter at 0 favours component A. */
    TournamentPredictor(const PredictorConfig &c,
                        std::unique_ptr<BranchPredictor> component_a,
                        std::unique_ptr<BranchPredictor> component_b)
        : mask((1u << c.tableBits) - 1),
          chooser(size_t(1) << c.tableBits),
          a(std::move(component_a)), b(std::move(component_b))
    {
    }

    bool
    predict(uint32_t pc) const override
    {
        return chosen(pc).predict(pc);
    }

    unsigned
    predictRun(uint32_t pc, unsigned max_n) const override
    {
        // All-or-nothing: one chooser read picks the component, which
        // runs the whole chain. Consulting the chooser per link would
        // splice extrapolations from predictors with different run
        // models.
        return chosen(pc).predictRun(pc, max_n);
    }

    void
    update(uint32_t pc, bool taken) override
    {
        // Train the chooser only when the components disagree on this
        // outcome, then let both components retire the branch.
        bool correct_a = a->predict(pc) == taken;
        bool correct_b = b->predict(pc) == taken;
        if (correct_a != correct_b) {
            SatCounter<2> &ctr = chooser[index(pc)];
            if (correct_b)
                ctr.up();
            else
                ctr.down();
        }
        a->update(pc, taken);
        b->update(pc, taken);
    }

    void
    reset() override
    {
        chooser.assign(chooser.size(), SatCounter<2>());
        a->reset();
        b->reset();
    }

    uint64_t
    stateHash() const override
    {
        uint64_t h = predict_detail::fnv1aInit();
        for (const SatCounter<2> &c : chooser)
            predict_detail::fnv1aAdd(h, c.value());
        predict_detail::fnv1aAdd(h, a->stateHash());
        predict_detail::fnv1aAdd(h, b->stateHash());
        return h;
    }

    size_t
    tableEntries() const override
    {
        return chooser.size() + a->tableEntries() + b->tableEntries();
    }

  private:
    uint32_t
    index(uint32_t pc) const
    {
        return predict_detail::pcIndexBits(pc) & mask;
    }

    const BranchPredictor &
    chosen(uint32_t pc) const
    {
        // MSB set means component B; power-on state favours A, so
        // "tournament:let+<conv>" starts on the stride path like STR.
        return chooser[index(pc)].confident() ? *b : *a;
    }

    uint32_t mask;
    std::vector<SatCounter<2>> chooser;
    std::unique_ptr<BranchPredictor> a;
    std::unique_ptr<BranchPredictor> b;
};

} // namespace loopspec

#endif // LOOPSPEC_PREDICT_TOURNAMENT_HH
