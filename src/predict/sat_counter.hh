/**
 * @file
 * Saturating up/down counter — the single clamping element shared by
 * every prediction structure in the repo: the paper's stride predictors
 * ("a two-bit saturating counter is used", §3.1.2), the speculation
 * disable table, and the conventional branch-predictor baselines
 * (docs/PREDICTORS.md). tests/predictor_property_test.cc is the source
 * of truth for its clamp semantics.
 */

#ifndef LOOPSPEC_PREDICT_SAT_COUNTER_HH
#define LOOPSPEC_PREDICT_SAT_COUNTER_HH

#include <cstdint>

namespace loopspec
{

/**
 * An N-bit saturating counter. Counts in [0, 2^N - 1]; "confident" means
 * the counter is in the upper half of its range (MSB set), matching the
 * usual two-bit predictor convention.
 */
template <unsigned Bits = 2>
class SatCounter
{
    static_assert(Bits >= 1 && Bits <= 8, "counter width out of range");

  public:
    static constexpr uint8_t maxValue = (1u << Bits) - 1;

    constexpr SatCounter() = default;
    constexpr explicit SatCounter(uint8_t initial) : count(initial)
    {
        if (count > maxValue)
            count = maxValue;
    }

    /** Increment, saturating at the top. */
    void
    up()
    {
        if (count < maxValue)
            ++count;
    }

    /** Decrement, saturating at zero. */
    void
    down()
    {
        if (count > 0)
            --count;
    }

    /** Reset to zero (lost all confidence). */
    void reset() { count = 0; }

    /** MSB set: prediction considered reliable. */
    bool confident() const { return count >= (1u << (Bits - 1)); }

    /** Fully saturated. */
    bool saturated() const { return count == maxValue; }

    uint8_t value() const { return count; }

  private:
    uint8_t count = 0;
};

using TwoBitCounter = SatCounter<2>;

} // namespace loopspec

#endif // LOOPSPEC_PREDICT_SAT_COUNTER_HH
