/**
 * @file
 * Loop-detection vs conventional branch predictors — the comparison the
 * paper makes by citation, measured (docs/PREDICTORS.md). Two views
 * over the Table-1 suite plus the synth.* families:
 *
 *  1. raw predictor accuracy over the retired conditional-branch
 *     stream (the stream the CLS consumes), per workload;
 *  2. delivered speculation quality: TPC and thread hit ratio of the
 *     LET-backed STR policy against each predictor driving the PRED
 *     spawn policy, across the --tus axis, through the sweep engine
 *     (one functional pass per workload, bit-identical for any
 *     --jobs).
 *
 * --json writes the consolidated BENCH_predict.json artifact
 * (accuracy rows + speculation cells + suite averages); CI uploads it.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "util/logging.hh"
#include "util/table_writer.hh"

using namespace loopspec;

namespace
{

std::vector<unsigned>
parseTus(const std::string &csv)
{
    std::vector<unsigned> out;
    for (const std::string &v : splitList(csv)) {
        if (v.empty() ||
            v.find_first_not_of("0123456789") != std::string::npos)
            fatal("--tus: malformed count '%s'", v.c_str());
        unsigned long n;
        try {
            n = std::stoul(v);
        } catch (const std::exception &) {
            fatal("--tus: malformed count '%s'", v.c_str());
        }
        if (n < 1 || n > 4096)
            fatal("--tus: TU count %lu outside [1, 4096]", n);
        out.push_back(static_cast<unsigned>(n));
    }
    if (out.empty())
        fatal("--tus: empty list");
    return out;
}

void
writeJson(const std::string &path,
          const std::vector<std::string> &names,
          const std::vector<PredictorConfig> &configs,
          const std::vector<WorkloadArtifacts> &arts,
          const SweepGrid &grid, const SweepResult &r, unsigned jobs)
{
    if (path.empty())
        return;
    std::ofstream os(path);
    if (!os)
        fatal("cannot write %s", path.c_str());
    os.precision(12);

    os << "{\n  \"jobs\": " << jobs << ",\n  \"workloads\": [";
    for (size_t i = 0; i < names.size(); ++i)
        os << (i ? ", " : "") << "\"" << names[i] << "\"";
    os << "],\n  \"predictors\": [";
    for (size_t i = 0; i < configs.size(); ++i)
        os << (i ? ", " : "") << "\"" << predictorName(configs[i])
           << "\"";
    os << "],\n";

    os << "  \"accuracy\": [\n";
    for (size_t w = 0; w < arts.size(); ++w) {
        for (size_t p = 0; p < arts[w].predictorStats.size(); ++p) {
            const PredictorMeterResult &m = arts[w].predictorStats[p];
            os << "    {\"workload\": \"" << names[w]
               << "\", \"predictor\": \"" << predictorName(m.config)
               << "\", \"branches\": " << m.lookups
               << ", \"hits\": " << m.hits
               << ", \"hit_pct\": " << m.hitPct() << "}"
               << (w + 1 < arts.size() ||
                           p + 1 < arts[w].predictorStats.size()
                       ? ","
                       : "")
               << "\n";
        }
    }
    os << "  ],\n";

    os << "  \"speculation\": {\n    \"tus\": [";
    for (size_t t = 0; t < grid.tuCounts.size(); ++t)
        os << (t ? ", " : "") << grid.tuCounts[t];
    os << "],\n    \"policies\": [";
    for (size_t p = 0; p < grid.policies.size(); ++p)
        os << (p ? ", " : "") << "\"" << grid.policies[p].name()
           << "\"";
    os << "],\n    \"cells\": [\n";
    for (size_t w = 0; w < grid.workloads.size(); ++w) {
        for (size_t p = 0; p < grid.policies.size(); ++p) {
            for (size_t t = 0; t < grid.tuCounts.size(); ++t) {
                const SpecStats &s = r.cell(w, 0, p, t);
                os << "      {\"workload\": \"" << grid.workloads[w]
                   << "\", \"policy\": \""
                   << grid.policies[p].name()
                   << "\", \"tus\": " << grid.tuCounts[t]
                   << ", \"tpc\": " << s.tpc()
                   << ", \"hit_pct\": " << 100.0 * s.hitRatio() << "}"
                   << (w + 1 < grid.workloads.size() ||
                               p + 1 < grid.policies.size() ||
                               t + 1 < grid.tuCounts.size()
                           ? ","
                           : "")
                   << "\n";
            }
        }
    }
    os << "    ],\n    \"suite_avg\": [\n";
    // Policy 0 is the LET-backed STR reference; tpc_gap_vs_str > 0
    // means the scheme closed (and passed) the PR-5 predictor gap.
    for (size_t p = 0; p < grid.policies.size(); ++p) {
        for (size_t t = 0; t < grid.tuCounts.size(); ++t) {
            os << "      {\"policy\": \"" << grid.policies[p].name()
               << "\", \"tus\": " << grid.tuCounts[t]
               << ", \"tpc\": " << r.meanTpc(p, t)
               << ", \"tpc_gap_vs_str\": "
               << r.meanTpc(p, t) - r.meanTpc(0, t)
               << ", \"hit_pct\": " << r.meanHitPct(p, t) << "}"
               << (p + 1 < grid.policies.size() ||
                           t + 1 < grid.tuCounts.size()
                       ? ","
                       : "")
               << "\n";
        }
    }
    os << "    ]\n  }\n}\n";
    std::cout << "wrote " << path << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(argc, argv,
                                      {"predictors", "tus", "json"},
                                      &args);

    std::vector<PredictorConfig> configs;
    for (const std::string &spec : splitList(args->getString(
             "predictors",
             "bimodal:12,gshare:12,local:10/10,let:10,"
             "tournament:let:10+local:10/10,tage:4/2-8")))
        configs.push_back(parsePredictorSpec(spec));
    if (configs.empty())
        fatal("--predictors: empty list");
    std::vector<unsigned> tus = parseTus(args->getString("tus", "2,4,8"));

    // Default scope: the whole Table-1 suite plus the generated
    // synth.* families — the irregular-control regime where the
    // baselines and the loop tables disagree most.
    std::vector<std::string> names = opts.benchmarks;
    if (names.empty()) {
        names = workloadNames();
        for (const std::string &n : syntheticWorkloadNames())
            names.push_back(n);
    }

    // --- 1. Accuracy over the retired conditional-branch stream ------
    CollectFlags flags;
    flags.predictors = configs;
    std::vector<WorkloadArtifacts> arts =
        runWorkloads(names, opts, flags, opts.jobs);

    std::vector<std::string> headers = {"bench", "branches"};
    for (const PredictorConfig &c : configs)
        headers.push_back(predictorName(c) + " hit%");
    TableWriter acc(headers);
    for (size_t w = 0; w < arts.size(); ++w) {
        acc.row();
        acc.cell(names[w]);
        acc.cell(arts[w].predictorStats.empty()
                     ? 0
                     : arts[w].predictorStats[0].lookups);
        for (const PredictorMeterResult &m : arts[w].predictorStats)
            acc.cell(m.hitPct(), 2);
    }
    std::cout << "Predictor accuracy on the retired conditional-branch "
                 "stream\n";
    if (opts.csv)
        acc.printCsv(std::cout);
    else
        acc.print(std::cout);

    // --- 2. Delivered speculation: STR (LET) vs each PRED scheme -----
    SweepGrid grid = sweepGridFromOptions(opts);
    grid.workloads = names;
    grid.policies = {{SpecPolicy::Str, 3, DataMode::None, "STR"}};
    for (const PredictorConfig &c : configs)
        grid.policies.push_back(predictorGridPolicy(predictorName(c)));
    grid.tuCounts = tus;
    SweepResult r = runSpecSweep(grid, opts.jobs);

    std::vector<std::string> sh = {"policy \\ TUs"};
    for (unsigned tu : tus)
        sh.push_back(std::to_string(tu));
    TableWriter tpc(sh);
    TableWriter hit(sh);
    for (size_t p = 0; p < grid.policies.size(); ++p) {
        tpc.row();
        hit.row();
        tpc.cell(grid.policies[p].name());
        hit.cell(grid.policies[p].name());
        for (size_t t = 0; t < tus.size(); ++t) {
            tpc.cell(r.meanTpc(p, t), 2);
            hit.cell(r.meanHitPct(p, t), 2);
        }
    }
    std::cout << "suite-average TPC (loop detection vs predictors)\n";
    if (opts.csv)
        tpc.printCsv(std::cout);
    else
        tpc.print(std::cout);
    std::cout << "suite-average thread hit ratio %\n";
    if (opts.csv)
        hit.printCsv(std::cout);
    else
        hit.print(std::cout);

    writeJson(args->getString("json", ""), names, configs, arts, grid,
              r, opts.jobs);
    return 0;
}
