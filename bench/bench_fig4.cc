/**
 * @file
 * Reproduces Figure 4: average LET and LIT hit ratios across the suite
 * for 2/4/8/16-entry tables (CLS fixed at 16 entries). The paper's text
 * quotes four anchor values; they are printed alongside.
 */

#include <iostream>
#include <map>

#include "bench/paper_ref.hh"
#include "harness/runner.hh"
#include "util/logging.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});

    CollectFlags flags;
    flags.hitRatios = true;

    std::map<size_t, double> let_sum, lit_sum;
    std::map<size_t, std::map<std::string, std::pair<double, double>>>
        per_bench; // size -> bench -> (let, lit)
    unsigned count = 0;

    for (const auto &name : opts.selected()) {
        WorkloadArtifacts a = runWorkload(name, opts, flags);
        for (const auto &[sz, res] : a.letResults) {
            let_sum[sz] += 100.0 * res.ratio();
            per_bench[sz][name].first = 100.0 * res.ratio();
        }
        for (const auto &[sz, res] : a.litResults) {
            lit_sum[sz] += 100.0 * res.ratio();
            per_bench[sz][name].second = 100.0 * res.ratio();
        }
        ++count;
    }

    auto paper_let = [](size_t sz) -> std::string {
        if (sz == 8)
            return strprintf("%.2f", paper::fig4LetAt8);
        if (sz == 16)
            return strprintf("%.2f", paper::fig4LetAt16);
        return "-";
    };
    auto paper_lit = [](size_t sz) -> std::string {
        if (sz == 2)
            return strprintf("%.2f", paper::fig4LitAt2);
        if (sz == 4)
            return strprintf("%.2f", paper::fig4LitAt4);
        return "-";
    };

    TableWriter t({"entries", "LET hit%", "LET(paper)", "LIT hit%",
                   "LIT(paper)"});
    for (size_t sz : hitRatioTableSizes()) {
        t.row();
        t.cell(static_cast<uint64_t>(sz));
        t.cell(let_sum[sz] / count, 2);
        t.cell(paper_let(sz));
        t.cell(lit_sum[sz] / count, 2);
        t.cell(paper_lit(sz));
    }

    std::cout << "Figure 4: average LET/LIT hit ratios "
                 "(suite average, measured vs paper anchors)\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    // Per-benchmark detail at the paper's trade-off sizes (LIT=4,
    // LET=16).
    TableWriter d({"bench", "LET@16 %", "LIT@4 %"});
    for (const auto &name : opts.selected()) {
        d.row();
        d.cell(name);
        d.cell(per_bench[16][name].first, 2);
        d.cell(per_bench[4][name].second, 2);
    }
    std::cout << "\nPer-benchmark detail at the paper's recommended "
                 "configuration:\n";
    if (opts.csv)
        d.printCsv(std::cout);
    else
        d.print(std::cout);
    return 0;
}
