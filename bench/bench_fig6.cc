/**
 * @file
 * Reproduces Figure 6: per-program TPC under the STR policy for 2, 4, 8
 * and 16 thread units — declared as a sweep grid (STR × {2,4,8,16} TUs)
 * over the shared-recording engine: one trace pass per workload produces
 * the event recording, and every configuration cell replays it through
 * the event-driven TU simulator (in parallel under --jobs).
 */

#include <iostream>
#include <memory>

#include "bench/paper_ref.hh"
#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(argc, argv, {"json"}, &args);

    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {{SpecPolicy::Str, 3, DataMode::None, "STR"}};
    grid.tuCounts = {2, 4, 8, 16};
    SweepResult r = runSpecSweep(grid, opts.jobs);

    TableWriter t({"bench", "2 TUs", "4 TUs", "8 TUs", "16 TUs"});
    for (size_t w = 0; w < grid.workloads.size(); ++w) {
        t.row();
        t.cell(grid.workloads[w]);
        for (size_t i = 0; i < grid.tuCounts.size(); ++i)
            t.cell(r.cell(w, 0, 0, i).tpc(), 2);
    }
    t.row();
    t.cell(std::string("AVG"));
    for (size_t i = 0; i < grid.tuCounts.size(); ++i)
        t.cell(r.meanTpc(0, i), 2);
    t.row();
    t.cell(std::string("AVG(paper)"));
    for (size_t i = 0; i < grid.tuCounts.size(); ++i)
        t.cell(paper::fig6AvgStr.at(grid.tuCounts[i]), 2);

    std::cout << "Figure 6: TPC with the STR policy, 2/4/8/16 TUs\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    writeSweepJsonFile(args->getString("json", ""), r, opts.jobs);
    return 0;
}
