/**
 * @file
 * Reproduces Figure 6: per-program TPC under the STR policy for 2, 4, 8
 * and 16 thread units. One trace pass per workload produces the event
 * recording; the event-driven TU simulator then replays it per
 * configuration.
 */

#include <iostream>

#include "bench/paper_ref.hh"
#include "harness/runner.hh"
#include "speculation/spec_sim.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});

    CollectFlags flags;
    flags.recording = true;

    const unsigned tus[] = {2, 4, 8, 16};

    TableWriter t({"bench", "2 TUs", "4 TUs", "8 TUs", "16 TUs"});
    double sum[4] = {};
    unsigned count = 0;
    for (const auto &name : opts.selected()) {
        WorkloadArtifacts a = runWorkload(name, opts, flags);
        t.row();
        t.cell(name);
        for (unsigned i = 0; i < 4; ++i) {
            SpecConfig cfg;
            cfg.numTUs = tus[i];
            cfg.policy = SpecPolicy::Str;
            ThreadSpecSimulator sim(a.recording, cfg);
            double tpc = sim.run().tpc();
            t.cell(tpc, 2);
            sum[i] += tpc;
        }
        ++count;
    }
    t.row();
    t.cell(std::string("AVG"));
    for (unsigned i = 0; i < 4; ++i)
        t.cell(sum[i] / count, 2);
    t.row();
    t.cell(std::string("AVG(paper)"));
    for (unsigned i = 0; i < 4; ++i)
        t.cell(paper::fig6AvgStr.at(tus[i]), 2);

    std::cout << "Figure 6: TPC with the STR policy, 2/4/8/16 TUs\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
