/**
 * @file
 * Reproduces Table 1: per-program loop statistics (#instructions, static
 * loop count, iterations per execution, instructions per iteration,
 * average and maximum nesting level), side by side with the paper's
 * values. Absolute instruction counts are scaled (synthetic workloads);
 * every other column is a shape statistic and comparable directly.
 */

#include <iostream>

#include "bench/paper_ref.hh"
#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});

    TableWriter t({"bench", "#instr/1e6", "#loops", "#loops(paper)",
                   "#iter/exec", "(paper)", "#instr/iter", "(paper)",
                   "avg.nl", "(paper)", "max.nl", "(paper)"});

    CollectFlags flags;
    flags.loopStats = true;

    for (const auto &name : opts.selected()) {
        WorkloadArtifacts a = runWorkload(name, opts, flags);
        const auto &r = a.loopStats;
        const auto &p = paper::table1.at(name);
        t.row();
        t.cell(name);
        t.cell(static_cast<double>(r.totalInstrs) / 1e6, 2);
        t.cell(r.staticLoops);
        t.cell(p.loops);
        t.cell(r.itersPerExec, 2);
        t.cell(p.itersPerExec, 2);
        t.cell(r.instrsPerIter, 2);
        t.cell(p.instrsPerIter, 2);
        t.cell(r.avgNesting, 2);
        t.cell(p.avgNest, 2);
        t.cell(static_cast<uint64_t>(r.maxNesting));
        t.cell(static_cast<uint64_t>(p.maxNest));
    }

    std::cout << "Table 1: loop statistics (measured vs paper)\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
