/**
 * @file
 * Reproduces Table 1: per-program loop statistics (#instructions, static
 * loop count, iterations per execution, instructions per iteration,
 * average and maximum nesting level), side by side with the paper's
 * values. Absolute instruction counts are scaled (synthetic workloads);
 * every other column is a shape statistic and comparable directly.
 */

#include <iostream>

#include "bench/paper_ref.hh"
#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});

    TableWriter t({"bench", "#instr/1e6", "#loops", "#loops(paper)",
                   "#iter/exec", "(paper)", "#instr/iter", "(paper)",
                   "avg.nl", "(paper)", "max.nl", "(paper)"});

    CollectFlags flags;
    flags.loopStats = true;

    // All workloads trace concurrently; artifacts come back in suite
    // order, so the printed table is identical to the sequential loop.
    std::vector<std::string> names = opts.selected();
    std::vector<WorkloadArtifacts> artifacts =
        runWorkloads(names, opts, flags);
    for (size_t i = 0; i < names.size(); ++i) {
        const std::string &name = names[i];
        const auto &r = artifacts[i].loopStats;
        // Workloads outside the paper's suite (synth.*) have no
        // reference row; their paper columns print "-".
        auto it = paper::table1.find(name);
        const paper::Table1Row *p =
            it == paper::table1.end() ? nullptr : &it->second;
        auto paperCount = [&](auto member) {
            if (p)
                t.cell(static_cast<uint64_t>(p->*member));
            else
                t.cell("-");
        };
        auto paperStat = [&](double paper::Table1Row::*member) {
            if (p)
                t.cell(p->*member, 2);
            else
                t.cell("-");
        };
        t.row();
        t.cell(name);
        t.cell(static_cast<double>(r.totalInstrs) / 1e6, 2);
        t.cell(r.staticLoops);
        paperCount(&paper::Table1Row::loops);
        t.cell(r.itersPerExec, 2);
        paperStat(&paper::Table1Row::itersPerExec);
        t.cell(r.instrsPerIter, 2);
        paperStat(&paper::Table1Row::instrsPerIter);
        t.cell(r.avgNesting, 2);
        paperStat(&paper::Table1Row::avgNest);
        t.cell(static_cast<uint64_t>(r.maxNesting));
        paperCount(&paper::Table1Row::maxNest);
    }

    std::cout << "Table 1: loop statistics (measured vs paper)\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
