/**
 * @file
 * Reproduces Table 2: STR(3) control-speculation statistics on 4 TUs:
 * number of speculation actions, threads per action, thread hit ratio,
 * instructions from speculation to verification, and TPC — measured vs
 * paper. Absolute event counts scale with trace length; ratios compare
 * directly.
 */

#include <iostream>

#include "bench/paper_ref.hh"
#include "harness/runner.hh"
#include "speculation/spec_sim.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});

    CollectFlags flags;
    flags.recording = true;

    TableWriter t({"bench", "#spec", "#thr/spec", "(paper)", "hit%",
                   "(paper)", "#instr-verif", "(paper)", "TPC",
                   "(paper)"});

    double tpc_sum = 0.0, hit_sum = 0.0;
    unsigned count = 0;
    for (const auto &name : opts.selected()) {
        WorkloadArtifacts a = runWorkload(name, opts, flags);
        SpecConfig cfg;
        cfg.numTUs = 4;
        cfg.policy = SpecPolicy::StrI;
        cfg.nestLimit = 3;
        ThreadSpecSimulator sim(a.recording, cfg);
        SpecStats s = sim.run();
        const auto &p = paper::table2.at(name);
        t.row();
        t.cell(name);
        t.cell(s.specEvents);
        t.cell(s.threadsPerSpec(), 2);
        t.cell(p.threadsPerSpec, 2);
        t.cell(100.0 * s.hitRatio(), 2);
        t.cell(p.hitRatioPct, 2);
        t.cell(s.avgInstrToVerif(), 0);
        t.cell(p.instrsToVerify, 0);
        t.cell(s.tpc(), 2);
        t.cell(p.tpc, 2);
        tpc_sum += s.tpc();
        hit_sum += 100.0 * s.hitRatio();
        ++count;
    }

    std::cout << "Table 2: control speculation statistics, STR(3), "
                 "4 TUs (measured vs paper)\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    std::cout << "suite averages: TPC " << tpc_sum / count << ", hit "
              << hit_sum / count << "%\n";
    return 0;
}
