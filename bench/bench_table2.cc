/**
 * @file
 * Reproduces Table 2: STR(3) control-speculation statistics on 4 TUs:
 * number of speculation actions, threads per action, thread hit ratio,
 * instructions from speculation to verification, and TPC — measured vs
 * paper. A singleton (STR(3) × 4 TUs) sweep grid; absolute event counts
 * scale with trace length, ratios compare directly.
 */

#include <iostream>
#include <memory>

#include "bench/paper_ref.hh"
#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(argc, argv, {"json"}, &args);

    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {{SpecPolicy::StrI, 3, DataMode::None, "STR(3)"}};
    grid.tuCounts = {4};
    SweepResult r = runSpecSweep(grid, opts.jobs);

    TableWriter t({"bench", "#spec", "#thr/spec", "(paper)", "hit%",
                   "(paper)", "#instr-verif", "(paper)", "TPC",
                   "(paper)"});

    for (size_t w = 0; w < grid.workloads.size(); ++w) {
        const SpecStats &s = r.cell(w, 0, 0, 0);
        const auto &p = paper::table2.at(grid.workloads[w]);
        t.row();
        t.cell(grid.workloads[w]);
        t.cell(s.specEvents);
        t.cell(s.threadsPerSpec(), 2);
        t.cell(p.threadsPerSpec, 2);
        t.cell(100.0 * s.hitRatio(), 2);
        t.cell(p.hitRatioPct, 2);
        t.cell(s.avgInstrToVerif(), 0);
        t.cell(p.instrsToVerify, 0);
        t.cell(s.tpc(), 2);
        t.cell(p.tpc, 2);
    }

    std::cout << "Table 2: control speculation statistics, STR(3), "
                 "4 TUs (measured vs paper)\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    std::cout << "suite averages: TPC " << r.meanTpc(0, 0) << ", hit "
              << r.meanHitPct(0, 0) << "%\n";
    writeSweepJsonFile(args->getString("json", ""), r, opts.jobs);
    return 0;
}
