/**
 * @file
 * The paper's published numbers (HPCA 1998, Tables 1-2, Figures 4-7),
 * embedded so every bench binary prints measured-vs-paper side by side.
 * Absolute magnitudes differ (the paper ran 10^9+ Alpha instructions of
 * real SPEC95; we run scaled synthetic workloads) — the comparison is
 * about shape: orderings, ratios, crossovers.
 */

#ifndef LOOPSPEC_BENCH_PAPER_REF_HH
#define LOOPSPEC_BENCH_PAPER_REF_HH

#include <cstdint>
#include <map>
#include <string>

namespace loopspec
{
namespace paper
{

/** Table 1: loop statistics. */
struct Table1Row
{
    double instrsG; //!< 10^9 instructions, whole run
    uint64_t loops;
    double itersPerExec;
    double instrsPerIter;
    double avgNest;
    uint32_t maxNest;
};

inline const std::map<std::string, Table1Row> table1 = {
    {"applu", {53.02, 189, 3.50, 261.08, 5.16, 7}},
    {"apsi", {33.06, 207, 10.75, 229.34, 3.14, 5}},
    {"compress", {61.05, 45, 6.27, 84.65, 2.52, 4}},
    {"fpppp", {144.49, 83, 3.05, 3217.80, 6.66, 9}},
    {"gcc", {1.93, 1229, 5.28, 80.21, 3.43, 7}},
    {"go", {38.87, 709, 3.76, 156.60, 4.86, 11}},
    {"hydro2d", {50.57, 291, 29.37, 127.66, 3.50, 4}},
    {"ijpeg", {40.98, 198, 20.75, 336.26, 6.37, 9}},
    {"li", {70.77, 94, 3.48, 107.80, 5.15, 10}},
    {"m88ksim", {79.19, 127, 9.38, 39.82, 1.98, 5}},
    {"mgrid", {102.81, 142, 28.93, 512.68, 4.93, 6}},
    {"perl", {30.66, 147, 3.11, 47.02, 1.35, 5}},
    {"su2cor", {40.23, 213, 51.23, 257.17, 3.50, 5}},
    {"swim", {40.75, 79, 188.54, 278.89, 2.99, 3}},
    {"tomcatv", {32.05, 91, 57.18, 224.82, 3.01, 4}},
    {"turb3d", {96.27, 152, 4.11, 239.44, 3.97, 6}},
    {"vortex", {94.98, 220, 12.08, 215.56, 3.06, 6}},
    {"wave5", {35.69, 195, 56.15, 164.25, 3.12, 5}},
};

/** Table 2: STR(3) speculation statistics on 4 TUs. */
struct Table2Row
{
    uint64_t specs;
    double threadsPerSpec;
    double hitRatioPct;
    double instrsToVerify;
    double tpc;
};

inline const std::map<std::string, Table2Row> table2 = {
    {"applu", {218661, 2.62, 54.51, 2316, 2.21}},
    {"apsi", {118637, 2.91, 90.48, 2301, 3.51}},
    {"compress", {2804450, 2.69, 100.00, 91.94, 3.23}},
    {"fpppp", {3417, 1.67, 86.92, 191727, 2.71}},
    {"gcc", {1206937, 2.06, 76.05, 370, 2.37}},
    {"go", {18427, 2.09, 71.17, 69749, 1.06}},
    {"hydro2d", {706635, 2.99, 99.43, 433, 2.52}},
    {"ijpeg", {150450, 2.72, 96.54, 1608, 2.36}},
    {"li", {1567433, 1.71, 69.16, 353, 1.75}},
    {"m88ksim", {1097194, 2.77, 97.32, 292, 2.78}},
    {"mgrid", {7900, 2.80, 97.50, 36523, 3.71}},
    {"perl", {3114338, 2.33, 60.34, 35, 1.17}},
    {"su2cor", {4906331, 2.22, 99.92, 45, 1.94}},
    {"swim", {61005, 3.00, 99.91, 4455, 3.48}},
    {"tomcatv", {111394, 2.86, 77.24, 2363, 3.85}},
    {"turb3d", {106237, 2.99, 99.18, 2417, 3.84}},
    {"vortex", {131024, 2.12, 90.25, 2502, 3.03}},
    {"wave5", {165950, 2.60, 99.95, 1778, 3.75}},
};

/** Figure 4 anchors quoted in the text (average hit ratios, percent). */
inline constexpr double fig4LitAt2 = 85.00;
inline constexpr double fig4LitAt4 = 90.50;
inline constexpr double fig4LetAt8 = 72.44;
inline constexpr double fig4LetAt16 = 91.98;

/** Figures 6/7: suite-average TPC for the STR policy. */
inline const std::map<unsigned, double> fig6AvgStr = {
    {2, 1.65}, {4, 2.6}, {8, 4.0}, {16, 6.2}};

} // namespace paper
} // namespace loopspec

#endif // LOOPSPEC_BENCH_PAPER_REF_HH
