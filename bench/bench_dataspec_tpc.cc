/**
 * @file
 * Extension experiment (the paper's stated follow-up, §4/§5): how much
 * of the control-speculation TPC survives when speculative threads must
 * also have every live-in *value* correctly predicted (last value +
 * stride) to commit? A thread whose iteration had any mispredicted
 * live-in is discarded at verification — the cost the paper's "their
 * corresponding synchronization can be avoided" claim is about.
 *
 * Three columns per program, 4 TUs:
 *   control      - §3 model (data dependences ignored; Figure 6/Table 2)
 *   ctrl+data    - Profiled data mode under STR
 *   ctrl+data(3) - Profiled data mode under STR(3)
 */

#include <iostream>

#include "harness/runner.hh"
#include "speculation/spec_sim.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});

    CollectFlags flags;
    flags.dataCorrectness = true;

    TableWriter t({"bench", "control", "ctrl+data", "retained%",
                   "ctrl+data STR(3)", "data misses%"});
    double sum_ctrl = 0, sum_data = 0;
    unsigned count = 0;

    for (const auto &name : opts.selected()) {
        WorkloadArtifacts a = runWorkload(name, opts, flags);

        SpecConfig ctrl{4, SpecPolicy::Str, 3, DataMode::None};
        SpecConfig data{4, SpecPolicy::Str, 3, DataMode::Profiled};
        SpecConfig data3{4, SpecPolicy::StrI, 3, DataMode::Profiled};

        SpecStats sc = ThreadSpecSimulator(a.recording, ctrl).run();
        SpecStats sd = ThreadSpecSimulator(a.recording, data).run();
        SpecStats s3 = ThreadSpecSimulator(a.recording, data3).run();

        uint64_t attempts = sd.threadsVerified + sd.threadsSquashed;
        t.row();
        t.cell(name);
        t.cell(sc.tpc(), 2);
        t.cell(sd.tpc(), 2);
        t.cell(sc.tpc() > 1.0
                   ? 100.0 * (sd.tpc() - 1.0) / (sc.tpc() - 1.0)
                   : 100.0,
               1);
        t.cell(s3.tpc(), 2);
        t.cell(attempts ? 100.0 * static_cast<double>(sd.dataMisses) /
                              static_cast<double>(attempts)
                        : 0.0,
               1);
        sum_ctrl += sc.tpc();
        sum_data += sd.tpc();
        ++count;
    }
    t.row();
    t.cell(std::string("AVG"));
    t.cell(sum_ctrl / count, 2);
    t.cell(sum_data / count, 2);
    t.cell(sum_ctrl / count > 1.0
               ? 100.0 * (sum_data / count - 1.0) /
                     (sum_ctrl / count - 1.0)
               : 100.0,
           1);

    std::cout << "Extension: TPC when threads must also predict all "
                 "live-in values (4 TUs)\n";
    std::cout << "retained% = share of the control-speculation TPC gain "
                 "surviving value prediction.\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
