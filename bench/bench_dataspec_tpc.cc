/**
 * @file
 * Extension experiment (the paper's stated follow-up, §4/§5): the
 * combined control+data speculation figure. The §3 model's TPC is an
 * upper bound that ignores inter-thread data dependences; this bench
 * charges them, one source at a time, on the same annotated recordings
 * (docs/DATASPEC.md):
 *
 *   control  - §3 model (data dependences ignored; Figure 6/Table 2)
 *   +live    - live-in register values must be stride-predictable at
 *              spawn or the thread's work is discarded (DataMode::
 *              Profiled, the value-prediction squash)
 *   +mem     - profiled cross-iteration memory conflicts squash the
 *              violating thread and everything younger, charging a
 *              per-violation recovery penalty (DataMode::Conflicts)
 *   +all     - both squash sources together (DataMode::Full): the
 *              combined control+data TPC the §5 conclusion reasons
 *              about
 *
 * One grid on STR / 4 TUs; a single functional pass per workload feeds
 * every cell. retained% is the share of the control-speculation TPC
 * *gain* (over 1.0) surviving the full data model.
 */

#include <iostream>
#include <memory>

#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(argc, argv, {"json", "datacost"},
                                      &args);

    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {
        {SpecPolicy::Str, 3, DataMode::None, "control"},
        {SpecPolicy::Str, 3, DataMode::Profiled, "+live"},
        {SpecPolicy::Str, 3, DataMode::Conflicts, "+mem"},
        {SpecPolicy::Str, 3, DataMode::Full, "+all"}};
    grid.tuCounts = {4};
    // Per-violation recovery penalty (SpecConfig::dataSquashCycles):
    // the squashed work is already lost; this adds the restart cost a
    // LAMP-style remediation would pay per flagged edge.
    grid.dataSquashCycles =
        static_cast<unsigned>(args->getUint("datacost", 20));
    SweepResult r = runSpecSweep(grid, opts.jobs);

    TableWriter t({"bench", "control", "+live", "+mem", "+all",
                   "retained%", "mem squash%", "live miss%"});
    for (size_t w = 0; w < grid.workloads.size(); ++w) {
        const SpecStats &sc = r.cell(w, 0, 0, 0);
        const SpecStats &sl = r.cell(w, 0, 1, 0);
        const SpecStats &sm = r.cell(w, 0, 2, 0);
        const SpecStats &sa = r.cell(w, 0, 3, 0);

        uint64_t attempts = sa.threadsVerified + sa.threadsSquashed;
        t.row();
        t.cell(grid.workloads[w]);
        t.cell(sc.tpc(), 2);
        t.cell(sl.tpc(), 2);
        t.cell(sm.tpc(), 2);
        t.cell(sa.tpc(), 2);
        t.cell(sc.tpc() > 1.0
                   ? 100.0 * (sa.tpc() - 1.0) / (sc.tpc() - 1.0)
                   : 100.0,
               1);
        t.cell(attempts ? 100.0 *
                              static_cast<double>(sa.conflictSquashes) /
                              static_cast<double>(attempts)
                        : 0.0,
               1);
        t.cell(attempts ? 100.0 * static_cast<double>(sa.dataMisses) /
                              static_cast<double>(attempts)
                        : 0.0,
               1);
    }
    double avg_ctrl = r.meanTpc(0, 0);
    double avg_full = r.meanTpc(3, 0);
    t.row();
    t.cell(std::string("AVG"));
    t.cell(avg_ctrl, 2);
    t.cell(r.meanTpc(1, 0), 2);
    t.cell(r.meanTpc(2, 0), 2);
    t.cell(avg_full, 2);
    t.cell(avg_ctrl > 1.0
               ? 100.0 * (avg_full - 1.0) / (avg_ctrl - 1.0)
               : 100.0,
           1);

    std::cout << "Extension: combined control+data speculation TPC "
                 "(STR, 4 TUs, datacost="
              << grid.dataSquashCycles << ")\n";
    std::cout << "retained% = share of the control-speculation TPC gain "
                 "surviving the full data model (+all).\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    writeSweepJsonFile(args->getString("json", ""), r, opts.jobs);
    return 0;
}
