/**
 * @file
 * Extension experiment (the paper's stated follow-up, §4/§5): how much
 * of the control-speculation TPC survives when speculative threads must
 * also have every live-in *value* correctly predicted (last value +
 * stride) to commit? A thread whose iteration had any mispredicted
 * live-in is discarded at verification — the cost the paper's "their
 * corresponding synchronization can be avoided" claim is about.
 *
 * A three-policy sweep grid on 4 TUs (one annotated recording per
 * workload feeds all three cells):
 *   control      - §3 model (data dependences ignored; Figure 6/Table 2)
 *   ctrl+data    - Profiled data mode under STR
 *   ctrl+data(3) - Profiled data mode under STR(3)
 */

#include <iostream>
#include <memory>

#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(argc, argv, {"json"}, &args);

    SweepGrid grid = sweepGridFromOptions(opts);
    grid.policies = {
        {SpecPolicy::Str, 3, DataMode::None, "control"},
        {SpecPolicy::Str, 3, DataMode::Profiled, "ctrl+data"},
        {SpecPolicy::StrI, 3, DataMode::Profiled, "ctrl+data STR(3)"}};
    grid.tuCounts = {4};
    SweepResult r = runSpecSweep(grid, opts.jobs);

    TableWriter t({"bench", "control", "ctrl+data", "retained%",
                   "ctrl+data STR(3)", "data misses%"});
    for (size_t w = 0; w < grid.workloads.size(); ++w) {
        const SpecStats &sc = r.cell(w, 0, 0, 0);
        const SpecStats &sd = r.cell(w, 0, 1, 0);
        const SpecStats &s3 = r.cell(w, 0, 2, 0);

        uint64_t attempts = sd.threadsVerified + sd.threadsSquashed;
        t.row();
        t.cell(grid.workloads[w]);
        t.cell(sc.tpc(), 2);
        t.cell(sd.tpc(), 2);
        t.cell(sc.tpc() > 1.0
                   ? 100.0 * (sd.tpc() - 1.0) / (sc.tpc() - 1.0)
                   : 100.0,
               1);
        t.cell(s3.tpc(), 2);
        t.cell(attempts ? 100.0 * static_cast<double>(sd.dataMisses) /
                              static_cast<double>(attempts)
                        : 0.0,
               1);
    }
    double avg_ctrl = r.meanTpc(0, 0);
    double avg_data = r.meanTpc(1, 0);
    t.row();
    t.cell(std::string("AVG"));
    t.cell(avg_ctrl, 2);
    t.cell(avg_data, 2);
    t.cell(avg_ctrl > 1.0
               ? 100.0 * (avg_data - 1.0) / (avg_ctrl - 1.0)
               : 100.0,
           1);

    std::cout << "Extension: TPC when threads must also predict all "
                 "live-in values (4 TUs)\n";
    std::cout << "retained% = share of the control-speculation TPC gain "
                 "surviving value prediction.\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    writeSweepJsonFile(args->getString("json", ""), r, opts.jobs);
    return 0;
}
