/**
 * @file
 * Reproduces Figure 5: TPC on an ideal machine with infinite thread
 * units, per program, full run vs a truncated prefix (the paper used the
 * first 10^9 instructions; we use the first half of the scaled trace).
 * Declared as an ideal-artifact sweep grid — the engine traces the
 * workload axis in parallel under --jobs. The figure is log-scale in the
 * paper; here the raw values are printed, sorted in the paper's
 * ascending order of potential.
 */

#include <cmath>
#include <iostream>
#include <memory>

#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(argc, argv, {"json"}, &args);

    SweepGrid grid = sweepGridFromOptions(opts);
    grid.ideal = true;
    SweepResult r = runSpecSweep(grid, opts.jobs);

    TableWriter t({"bench", "TPC(all)", "TPC(prefix)", "log10(all)"});
    for (size_t w = 0; w < grid.workloads.size(); ++w) {
        const SweepRow &row = r.row(w);
        t.row();
        t.cell(row.workload);
        t.cell(row.idealTpc, 1);
        t.cell(row.idealTpcPrefix, 1);
        t.cell(row.idealTpc > 0 ? std::log10(row.idealTpc) : 0.0, 2);
    }

    std::cout << "Figure 5: TPC for infinite TUs "
                 "(full trace vs first-half prefix)\n";
    std::cout << "Paper shape: ~10 for irregular codes (go, li, perl, "
                 "gcc) up to ~10^4..10^5\n";
    std::cout << "for regular FP nests (tomcatv, swim, wave5, "
                 "hydro2d).\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    double geomean = r.geomeanRowOverWorkloads(
        0, +[](const SweepRow &row) { return row.idealTpc; });
    if (geomean > 0.0)
        std::cout << "geomean TPC: " << geomean << "\n";
    writeSweepJsonFile(args->getString("json", ""), r, opts.jobs);
    return 0;
}
