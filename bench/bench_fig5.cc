/**
 * @file
 * Reproduces Figure 5: TPC on an ideal machine with infinite thread
 * units, per program, full run vs a truncated prefix (the paper used the
 * first 10^9 instructions; we use the first half of the scaled trace).
 * The figure is log-scale in the paper; here the raw values are printed,
 * sorted in the paper's ascending order of potential.
 */

#include <cmath>
#include <iostream>

#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});

    CollectFlags flags;
    flags.ideal = true;

    TableWriter t({"bench", "TPC(all)", "TPC(prefix)", "log10(all)"});
    double geo = 0.0;
    unsigned count = 0;
    for (const auto &name : opts.selected()) {
        WorkloadArtifacts a = runWorkload(name, opts, flags);
        t.row();
        t.cell(name);
        t.cell(a.idealTpc, 1);
        t.cell(a.idealTpcPrefix, 1);
        t.cell(a.idealTpc > 0 ? std::log10(a.idealTpc) : 0.0, 2);
        if (a.idealTpc > 0) {
            geo += std::log10(a.idealTpc);
            ++count;
        }
    }

    std::cout << "Figure 5: TPC for infinite TUs "
                 "(full trace vs first-half prefix)\n";
    std::cout << "Paper shape: ~10 for irregular codes (go, li, perl, "
                 "gcc) up to ~10^4..10^5\n";
    std::cout << "for regular FP nests (tomcatv, swim, wave5, "
                 "hydro2d).\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    if (count) {
        std::cout << "geomean TPC: "
                  << std::pow(10.0, geo / count) << "\n";
    }
    return 0;
}
