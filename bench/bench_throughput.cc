/**
 * @file
 * Trace-pipeline throughput benchmark: retired instructions per second
 * to produce the full experiment artifact set (Table-1 loop statistics,
 * Figure-4 LET/LIT hit ratios at 2/4/8/16 entries, and the speculation
 * event recording) on each of the three execution paths:
 *
 *   scalar  - the seed pipeline: step() reference interpreter with
 *             per-instruction observer dispatch, every listener (stats,
 *             8 hit meters, recorder) attached live and hearing every
 *             onInstr — the dispatch contract the seed harness had.
 *             Forwarding shims restore that contract, since event-only
 *             listener filtering is one of this PR's optimizations.
 *   batched_aos - AoS record delivery: the engine fills hot + cold
 *             planes and the default TraceObserver shim materializes
 *             72-byte DynInstr batches for a consumer that stayed on
 *             the AoS vocabulary (BatchNeed::FullRecords), which then
 *             walks records exactly as the pre-SoA pipeline did. This
 *             is what an unported observer costs today; only stats and
 *             the recorder ride the trace, the 8 meters are derived
 *             afterwards by replaying the recorded loop-event stream
 *             (replay time is included). bench_micro additionally
 *             carries the EngineConfig::soaBatches=false direct AoS
 *             fill (the non-GNU-compiler fallback), which skips the
 *             materialization pass and lands between this row and the
 *             SoA row.
 *   batched_soa - the current default: the same pipeline with run()
 *             delivering structure-of-arrays batches (hot pc/target/
 *             kind/taken planes only, since every rider reports
 *             BatchNeed::HotPlanes) through the token-threaded fill
 *             loop and the detector's prefetched control-index walk.
 *   replay_seq - the derived-configuration stage of a record/replay
 *             sweep as it stood before interleaving: four detectors at
 *             different CLS sizes (stats + ideal-TPC each) re-run one
 *             after another over a prerecorded control-event trace,
 *             each pass materializing AoS record batches through the
 *             compatibility shim (the pre-SoA replay pipeline).
 *   replay_ilv - the same four derived configurations on the new
 *             stack: SoA gap-free synthesis, advanced round-robin in
 *             fixed-size chunks (interleaveReplay) so each stretch of
 *             the recorded trace is pulled through the cache once and
 *             consumed by all four detectors while still resident.
 *
 * All paths must agree on the derived statistics and hit ratios (the
 * replay pair additionally on every per-config artifact); any
 * disagreement is fatal. Emits BENCH_throughput.json (--json overrides
 * the path) for the perf trajectory; the CI perf gate (tools/
 * bench_check) compares its speedup ratios against the committed
 * baseline.
 *
 * Flags: --benchmark <name> (default compress), --reps N (default 5,
 * best-of-N), --json <path>, plus the standard --scale/--max-instrs.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "loop/loop_detector.hh"
#include "loop/loop_stats.hh"
#include "speculation/event_record.hh"
#include "speculation/ideal_tpc.hh"
#include "tables/hit_ratio.hh"
#include "trace_io/replay_source.hh"
#include "tracegen/control_trace.hh"
#include "tracegen/trace_engine.hh"
#include "util/logging.hh"
#include "util/table_writer.hh"

using namespace loopspec;

namespace
{

struct PathResult
{
    double seconds = 0.0; //!< best-of-reps wall time
    uint64_t instrs = 0;
    LoopStatsReport stats;
    uint64_t meterHits = 0; //!< summed over all LET/LIT meters

    double
    instrsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(instrs) / seconds : 0.0;
    }
};

/**
 * Restores the seed's listener dispatch contract for the scalar
 * baseline: every listener heard onInstr for every retired instruction
 * (consumesInstrs-based filtering did not exist).
 */
class SeedDispatchShim : public LoopListener
{
  public:
    explicit SeedDispatchShim(LoopListener *l) : inner(l) {}

    void onInstr(const DynInstr &d) override { inner->onInstr(d); }
    void
    onExecStart(const ExecStartEvent &ev) override
    {
        inner->onExecStart(ev);
    }
    void
    onIterStart(const IterEvent &ev) override
    {
        inner->onIterStart(ev);
    }
    void onIterEnd(const IterEvent &ev) override { inner->onIterEnd(ev); }
    void
    onExecEnd(const ExecEndEvent &ev) override
    {
        inner->onExecEnd(ev);
    }
    void
    onSingleIterExec(const SingleIterExecEvent &ev) override
    {
        inner->onSingleIterExec(ev);
    }
    void
    onTraceDone(uint64_t total) override
    {
        inner->onTraceDone(total);
    }

  private:
    LoopListener *inner;
};

/**
 * Keeps a hot-plane consumer on the AoS vocabulary: reports the default
 * BatchNeed::FullRecords and leaves the default onInstrBatchSoA in
 * place, so the producer fills the cold planes and the compatibility
 * shim materializes 72-byte records before forwarding here. Wrapping
 * the detector in this reproduces exactly what an observer that never
 * ported to hot planes costs on the SoA engine — the pre-SoA record
 * pipeline.
 */
class AosDeliveryShim : public TraceObserver
{
  public:
    explicit AosDeliveryShim(TraceObserver *o) : inner(o) {}

    void onInstr(const DynInstr &d) override { inner->onInstr(d); }
    void
    onInstrBatchCtrl(const DynInstr *instrs, size_t count,
                     const uint32_t *ctrl, size_t num_ctrl) override
    {
        inner->onInstrBatchCtrl(instrs, count, ctrl, num_ctrl);
    }
    void onTraceEnd(uint64_t total) override { inner->onTraceEnd(total); }

  private:
    TraceObserver *inner;
};

/** The LET/LIT meter bank of Figure 4. */
struct MeterBank
{
    std::vector<std::unique_ptr<LetHitMeter>> lets;
    std::vector<std::unique_ptr<LitHitMeter>> lits;

    MeterBank()
    {
        for (size_t sz : hitRatioTableSizes()) {
            lets.push_back(std::make_unique<LetHitMeter>(sz));
            lits.push_back(std::make_unique<LitHitMeter>(sz));
        }
    }

    std::vector<LoopListener *>
    listeners()
    {
        std::vector<LoopListener *> out;
        for (auto &m : lets)
            out.push_back(m.get());
        for (auto &m : lits)
            out.push_back(m.get());
        return out;
    }

    uint64_t
    totalHits() const
    {
        uint64_t hits = 0;
        for (const auto &m : lets)
            hits += m->result().hits;
        for (const auto &m : lits)
            hits += m->result().hits;
        return hits;
    }
};

double
now()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double>(clk::now().time_since_epoch())
        .count();
}

template <typename Fn>
PathResult
best(unsigned reps, Fn &&once)
{
    PathResult best_r;
    for (unsigned i = 0; i < reps; ++i) {
        PathResult r = once();
        if (i == 0 || r.seconds < best_r.seconds)
            best_r = r;
    }
    return best_r;
}

void
checkAgreement(const char *what, const PathResult &a, const PathResult &b)
{
    if (a.stats.totalInstrs != b.stats.totalInstrs ||
        a.stats.totalExecs != b.stats.totalExecs ||
        a.stats.totalIters != b.stats.totalIters ||
        a.stats.staticLoops != b.stats.staticLoops ||
        a.meterHits != b.meterHits) {
        fatal("%s path disagrees with scalar path "
              "(instrs %llu vs %llu, execs %llu vs %llu, "
              "meter hits %llu vs %llu)",
              what, static_cast<unsigned long long>(b.stats.totalInstrs),
              static_cast<unsigned long long>(a.stats.totalInstrs),
              static_cast<unsigned long long>(b.stats.totalExecs),
              static_cast<unsigned long long>(a.stats.totalExecs),
              static_cast<unsigned long long>(b.meterHits),
              static_cast<unsigned long long>(a.meterHits));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts =
        parseRunOptions(argc, argv, {"benchmark", "reps", "json"}, &args);
    const std::string bench = args->getString("benchmark", "compress");
    const unsigned reps =
        static_cast<unsigned>(args->getUint("reps", 5));
    const std::string json_path =
        args->getString("json", "BENCH_throughput.json");

    Program prog = buildWorkload(bench, opts.scale);
    EngineConfig ecfg;
    ecfg.maxInstrs = opts.maxInstrs;

    // Scalar seed path: step() + per-instruction dispatch to the whole
    // live listener set.
    PathResult scalar = best(reps, [&] {
        PathResult r;
        TraceEngine engine(prog, ecfg);
        LoopDetector det({opts.clsEntries});
        LoopStats stats;
        LoopEventRecorder recorder;
        MeterBank meters;
        std::vector<std::unique_ptr<SeedDispatchShim>> shims;
        shims.push_back(std::make_unique<SeedDispatchShim>(&stats));
        for (auto *m : meters.listeners())
            shims.push_back(std::make_unique<SeedDispatchShim>(m));
        shims.push_back(std::make_unique<SeedDispatchShim>(&recorder));
        for (auto &s : shims)
            det.addListener(s.get());
        engine.addObserver(&det);
        DynInstr d;
        double t0 = now();
        while (engine.step(d)) {
        }
        r.seconds = now() - t0;
        r.instrs = engine.retired();
        r.stats = stats.report();
        r.meterHits = meters.totalHits();
        (void)recorder.take();
        return r;
    });

    // Batched fast path, exactly the runWorkload pipeline: predecoded
    // run() with stats + recorder live, meters derived by loop-event
    // replay (timed). Measured twice — AoS record delivery through the
    // compatibility shim (the cost of staying on the pre-SoA record
    // vocabulary) and the default SoA hot-plane batches.
    const auto batched_path = [&](bool soa) {
        return best(reps, [&, soa] {
            PathResult r;
            TraceEngine engine(prog, ecfg);
            LoopDetector det({opts.clsEntries});
            LoopStats stats;
            LoopEventRecorder recorder;
            det.addListener(&stats);
            det.addListener(&recorder);
            AosDeliveryShim aos_shim(&det);
            engine.addObserver(
                soa ? static_cast<TraceObserver *>(&det) : &aos_shim);
            MeterBank meters;
            double t0 = now();
            r.instrs = engine.run();
            LoopEventRecording rec = recorder.take();
            replayLoopEvents(rec, meters.listeners());
            r.seconds = now() - t0;
            r.stats = stats.report();
            r.meterHits = meters.totalHits();
            return r;
        });
    };
    PathResult batched_aos = batched_path(false);
    checkAgreement("batched_aos", batched_aos, scalar);
    PathResult batched_soa = batched_path(true);
    checkAgreement("batched_soa", batched_soa, scalar);

    // Replay pair: one recording pass (untimed), then the derived-
    // configuration stage of a sweep — four CLS sizes, each a detector
    // with stats + ideal-TPC — sequentially and interleaved. instrs is
    // the total work (4x the trace), so Minstr/s stays comparable.
    ControlTrace trace;
    {
        TraceEngine engine(prog, ecfg);
        ControlTraceRecorder rec;
        engine.addObserver(&rec);
        engine.run();
        trace = rec.take();
    }
    const std::vector<size_t> derivedCls = {2, 4, 8, 16};

    struct DerivedConfig
    {
        LoopDetector det;
        LoopStats stats;
        IdealTpcComputer ideal;
        explicit DerivedConfig(size_t cls) : det({cls})
        {
            det.addListener(&stats);
            det.addListener(&ideal);
        }
    };
    struct ReplayResult
    {
        double seconds = 0.0;
        uint64_t instrs = 0;
        std::vector<LoopStatsReport> stats;
        std::vector<uint64_t> idealCycles;

        double
        instrsPerSec() const
        {
            return seconds > 0.0
                       ? static_cast<double>(instrs) / seconds
                       : 0.0;
        }
    };
    const auto harvest = [&](ReplayResult &r,
                             std::vector<std::unique_ptr<DerivedConfig>>
                                 &configs) {
        for (auto &cfg : configs) {
            r.stats.push_back(cfg->stats.report());
            r.idealCycles.push_back(cfg->ideal.idealCycles());
        }
    };
    const auto best_replay = [&](auto &&once) {
        ReplayResult best_r;
        for (unsigned i = 0; i < reps; ++i) {
            ReplayResult r = once();
            if (i == 0 || r.seconds < best_r.seconds)
                best_r = r;
        }
        return best_r;
    };

    // Sequential row = the pre-interleaving replay stage verbatim: one
    // full AoS-materializing pass per derived config (the shim keeps
    // the synthesizer on record batches, as replay always ran before).
    ReplayResult replay_seq = best_replay([&] {
        ReplayResult r;
        std::vector<std::unique_ptr<DerivedConfig>> configs;
        std::vector<std::unique_ptr<AosDeliveryShim>> shims;
        for (size_t cls : derivedCls) {
            configs.push_back(std::make_unique<DerivedConfig>(cls));
            shims.push_back(std::make_unique<AosDeliveryShim>(
                &configs.back()->det));
        }
        double t0 = now();
        for (auto &shim : shims)
            r.instrs += replayControlTrace(trace, *shim);
        r.seconds = now() - t0;
        harvest(r, configs);
        return r;
    });
    ReplayResult replay_ilv = best_replay([&] {
        ReplayResult r;
        std::vector<std::unique_ptr<DerivedConfig>> configs;
        std::vector<std::unique_ptr<ControlTraceSource>> sources;
        std::vector<ReplaySource *> source_ptrs;
        for (size_t cls : derivedCls) {
            configs.push_back(std::make_unique<DerivedConfig>(cls));
            sources.push_back(std::make_unique<ControlTraceSource>(
                trace, configs.back()->det));
            source_ptrs.push_back(sources.back().get());
        }
        double t0 = now();
        std::string err = interleaveReplay(source_ptrs);
        if (!err.empty())
            fatal("%s", err.c_str());
        for (auto &src : sources)
            r.instrs += src->replayed();
        r.seconds = now() - t0;
        harvest(r, configs);
        return r;
    });
    for (size_t c = 0; c < derivedCls.size(); ++c) {
        const LoopStatsReport &a = replay_seq.stats[c];
        const LoopStatsReport &b = replay_ilv.stats[c];
        if (a.totalInstrs != b.totalInstrs ||
            a.totalExecs != b.totalExecs ||
            a.totalIters != b.totalIters ||
            a.staticLoops != b.staticLoops ||
            replay_seq.idealCycles[c] != replay_ilv.idealCycles[c]) {
            fatal("interleaved replay disagrees with sequential replay "
                  "at CLS size %zu",
                  derivedCls[c]);
        }
    }

    const double speedup_aos =
        scalar.seconds > 0.0 ? scalar.seconds / batched_aos.seconds
                             : 0.0;
    const double speedup_soa =
        scalar.seconds > 0.0 ? scalar.seconds / batched_soa.seconds
                             : 0.0;
    const double speedup_soa_vs_aos =
        batched_soa.seconds > 0.0
            ? batched_aos.seconds / batched_soa.seconds
            : 0.0;
    const double speedup_ilv =
        replay_ilv.seconds > 0.0
            ? replay_seq.seconds / replay_ilv.seconds
            : 0.0;

    TableWriter t({"path", "instrs", "seconds", "Minstr/s", "speedup"});
    struct Row
    {
        const char *name;
        uint64_t instrs;
        double seconds;
        double ips;
        double speedup;
    };
    const Row rows[] = {
        {"scalar", scalar.instrs, scalar.seconds, scalar.instrsPerSec(),
         1.0},
        {"batched_aos", batched_aos.instrs, batched_aos.seconds,
         batched_aos.instrsPerSec(), speedup_aos},
        {"batched_soa", batched_soa.instrs, batched_soa.seconds,
         batched_soa.instrsPerSec(), speedup_soa},
        {"replay_seq", replay_seq.instrs, replay_seq.seconds,
         replay_seq.instrsPerSec(), 1.0},
        {"replay_ilv", replay_ilv.instrs, replay_ilv.seconds,
         replay_ilv.instrsPerSec(), speedup_ilv},
    };
    const size_t num_rows = sizeof(rows) / sizeof(rows[0]);
    for (const Row &row : rows) {
        t.row();
        t.cell(std::string(row.name));
        t.cell(row.instrs);
        t.cell(row.seconds, 4);
        t.cell(row.ips / 1e6, 2);
        t.cell(row.speedup, 2);
    }
    std::cout << "Trace-pipeline throughput, workload " << bench
              << " (best of " << reps << "; replay rows run "
              << derivedCls.size()
              << " derived CLS configs, speedup vs replay_seq)\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    std::ofstream js(json_path);
    if (!js)
        fatal("cannot write %s", json_path.c_str());
    js << "{\n"
       << "  \"workload\": \"" << bench << "\",\n"
       << "  \"scale\": " << opts.scale.factor << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"paths\": {\n";
    for (size_t i = 0; i < num_rows; ++i) {
        const Row &row = rows[i];
        js << "    \"" << row.name << "\": {\"instrs\": " << row.instrs
           << ", \"seconds\": " << row.seconds
           << ", \"instrs_per_sec\": " << row.ips << "}"
           << (i + 1 < num_rows ? "," : "") << "\n";
    }
    js << "  },\n"
       << "  \"speedup\": {\"batched_aos_vs_scalar\": " << speedup_aos
       << ", \"batched_soa_vs_scalar\": " << speedup_soa
       << ", \"soa_vs_aos\": " << speedup_soa_vs_aos
       << ", \"interleaved_vs_sequential\": " << speedup_ilv << "}\n"
       << "}\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
