/**
 * @file
 * Trace-pipeline throughput benchmark: retired instructions per second
 * to produce the full experiment artifact set (Table-1 loop statistics,
 * Figure-4 LET/LIT hit ratios at 2/4/8/16 entries, and the speculation
 * event recording) on each of the three execution paths:
 *
 *   scalar  - the seed pipeline: step() reference interpreter with
 *             per-instruction observer dispatch, every listener (stats,
 *             8 hit meters, recorder) attached live and hearing every
 *             onInstr — the dispatch contract the seed harness had.
 *             Forwarding shims restore that contract, since event-only
 *             listener filtering is one of this PR's optimizations.
 *   batched - the current runWorkload pipeline: predecoded run() with
 *             ~4K-record batches and span-batched listeners; only stats
 *             and the recorder ride the trace, the 8 meters are derived
 *             afterwards by replaying the recorded loop-event stream
 *             (replay time is included).
 *   replay  - detector + full listener set re-run over a prerecorded
 *             control-event trace: the cost of one *derived* sweep
 *             configuration (CLS size, trace prefix) under record/replay
 *             versus re-executing the functional simulator.
 *
 * All three paths must agree on the derived statistics and hit ratios;
 * any disagreement is fatal. Emits BENCH_throughput.json (--json
 * overrides the path) for the perf trajectory; the CI perf-smoke step
 * uploads it.
 *
 * Flags: --benchmark <name> (default compress), --reps N (default 5,
 * best-of-N), --json <path>, plus the standard --scale/--max-instrs.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "loop/loop_detector.hh"
#include "loop/loop_stats.hh"
#include "speculation/event_record.hh"
#include "tables/hit_ratio.hh"
#include "tracegen/control_trace.hh"
#include "tracegen/trace_engine.hh"
#include "util/logging.hh"
#include "util/table_writer.hh"

using namespace loopspec;

namespace
{

struct PathResult
{
    double seconds = 0.0; //!< best-of-reps wall time
    uint64_t instrs = 0;
    LoopStatsReport stats;
    uint64_t meterHits = 0; //!< summed over all LET/LIT meters

    double
    instrsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(instrs) / seconds : 0.0;
    }
};

/**
 * Restores the seed's listener dispatch contract for the scalar
 * baseline: every listener heard onInstr for every retired instruction
 * (consumesInstrs-based filtering did not exist).
 */
class SeedDispatchShim : public LoopListener
{
  public:
    explicit SeedDispatchShim(LoopListener *l) : inner(l) {}

    void onInstr(const DynInstr &d) override { inner->onInstr(d); }
    void
    onExecStart(const ExecStartEvent &ev) override
    {
        inner->onExecStart(ev);
    }
    void
    onIterStart(const IterEvent &ev) override
    {
        inner->onIterStart(ev);
    }
    void onIterEnd(const IterEvent &ev) override { inner->onIterEnd(ev); }
    void
    onExecEnd(const ExecEndEvent &ev) override
    {
        inner->onExecEnd(ev);
    }
    void
    onSingleIterExec(const SingleIterExecEvent &ev) override
    {
        inner->onSingleIterExec(ev);
    }
    void
    onTraceDone(uint64_t total) override
    {
        inner->onTraceDone(total);
    }

  private:
    LoopListener *inner;
};

/** The LET/LIT meter bank of Figure 4. */
struct MeterBank
{
    std::vector<std::unique_ptr<LetHitMeter>> lets;
    std::vector<std::unique_ptr<LitHitMeter>> lits;

    MeterBank()
    {
        for (size_t sz : hitRatioTableSizes()) {
            lets.push_back(std::make_unique<LetHitMeter>(sz));
            lits.push_back(std::make_unique<LitHitMeter>(sz));
        }
    }

    std::vector<LoopListener *>
    listeners()
    {
        std::vector<LoopListener *> out;
        for (auto &m : lets)
            out.push_back(m.get());
        for (auto &m : lits)
            out.push_back(m.get());
        return out;
    }

    uint64_t
    totalHits() const
    {
        uint64_t hits = 0;
        for (const auto &m : lets)
            hits += m->result().hits;
        for (const auto &m : lits)
            hits += m->result().hits;
        return hits;
    }
};

double
now()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double>(clk::now().time_since_epoch())
        .count();
}

template <typename Fn>
PathResult
best(unsigned reps, Fn &&once)
{
    PathResult best_r;
    for (unsigned i = 0; i < reps; ++i) {
        PathResult r = once();
        if (i == 0 || r.seconds < best_r.seconds)
            best_r = r;
    }
    return best_r;
}

void
checkAgreement(const char *what, const PathResult &a, const PathResult &b)
{
    if (a.stats.totalInstrs != b.stats.totalInstrs ||
        a.stats.totalExecs != b.stats.totalExecs ||
        a.stats.totalIters != b.stats.totalIters ||
        a.stats.staticLoops != b.stats.staticLoops ||
        a.meterHits != b.meterHits) {
        fatal("%s path disagrees with scalar path "
              "(instrs %llu vs %llu, execs %llu vs %llu, "
              "meter hits %llu vs %llu)",
              what, static_cast<unsigned long long>(b.stats.totalInstrs),
              static_cast<unsigned long long>(a.stats.totalInstrs),
              static_cast<unsigned long long>(b.stats.totalExecs),
              static_cast<unsigned long long>(a.stats.totalExecs),
              static_cast<unsigned long long>(b.meterHits),
              static_cast<unsigned long long>(a.meterHits));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts =
        parseRunOptions(argc, argv, {"benchmark", "reps", "json"}, &args);
    const std::string bench = args->getString("benchmark", "compress");
    const unsigned reps =
        static_cast<unsigned>(args->getUint("reps", 5));
    const std::string json_path =
        args->getString("json", "BENCH_throughput.json");

    Program prog = buildWorkload(bench, opts.scale);
    EngineConfig ecfg;
    ecfg.maxInstrs = opts.maxInstrs;

    // Scalar seed path: step() + per-instruction dispatch to the whole
    // live listener set.
    PathResult scalar = best(reps, [&] {
        PathResult r;
        TraceEngine engine(prog, ecfg);
        LoopDetector det({opts.clsEntries});
        LoopStats stats;
        LoopEventRecorder recorder;
        MeterBank meters;
        std::vector<std::unique_ptr<SeedDispatchShim>> shims;
        shims.push_back(std::make_unique<SeedDispatchShim>(&stats));
        for (auto *m : meters.listeners())
            shims.push_back(std::make_unique<SeedDispatchShim>(m));
        shims.push_back(std::make_unique<SeedDispatchShim>(&recorder));
        for (auto &s : shims)
            det.addListener(s.get());
        engine.addObserver(&det);
        DynInstr d;
        double t0 = now();
        while (engine.step(d)) {
        }
        r.seconds = now() - t0;
        r.instrs = engine.retired();
        r.stats = stats.report();
        r.meterHits = meters.totalHits();
        (void)recorder.take();
        return r;
    });

    // Batched fast path, exactly the runWorkload pipeline: predecoded
    // run() with stats + recorder live, meters derived by loop-event
    // replay (timed).
    PathResult batched = best(reps, [&] {
        PathResult r;
        TraceEngine engine(prog, ecfg);
        LoopDetector det({opts.clsEntries});
        LoopStats stats;
        LoopEventRecorder recorder;
        det.addListener(&stats);
        det.addListener(&recorder);
        engine.addObserver(&det);
        MeterBank meters;
        double t0 = now();
        r.instrs = engine.run();
        LoopEventRecording rec = recorder.take();
        replayLoopEvents(rec, meters.listeners());
        r.seconds = now() - t0;
        r.stats = stats.report();
        r.meterHits = meters.totalHits();
        return r;
    });
    checkAgreement("batched", batched, scalar);

    // Replay path: one recording pass (untimed), then the detector and
    // full listener set re-run over the control-event trace — the cost
    // of each *derived* configuration in a record/replay sweep.
    ControlTrace trace;
    {
        TraceEngine engine(prog, ecfg);
        ControlTraceRecorder rec;
        engine.addObserver(&rec);
        engine.run();
        trace = rec.take();
    }
    PathResult replay = best(reps, [&] {
        PathResult r;
        LoopDetector det({opts.clsEntries});
        LoopStats stats;
        LoopEventRecorder recorder;
        det.addListener(&stats);
        det.addListener(&recorder);
        MeterBank meters;
        double t0 = now();
        r.instrs = replayControlTrace(trace, det);
        replayLoopEvents(recorder.take(), meters.listeners());
        r.seconds = now() - t0;
        r.stats = stats.report();
        r.meterHits = meters.totalHits();
        return r;
    });
    checkAgreement("replay", replay, scalar);

    const double speedup_batched =
        scalar.seconds > 0.0 ? scalar.seconds / batched.seconds : 0.0;
    const double speedup_replay =
        scalar.seconds > 0.0 ? scalar.seconds / replay.seconds : 0.0;

    TableWriter t({"path", "instrs", "seconds", "Minstr/s", "speedup"});
    struct Row
    {
        const char *name;
        const PathResult *r;
        double speedup;
    };
    const Row rows[] = {{"scalar", &scalar, 1.0},
                        {"batched", &batched, speedup_batched},
                        {"replay", &replay, speedup_replay}};
    for (const Row &row : rows) {
        t.row();
        t.cell(std::string(row.name));
        t.cell(row.r->instrs);
        t.cell(row.r->seconds, 4);
        t.cell(row.r->instrsPerSec() / 1e6, 2);
        t.cell(row.speedup, 2);
    }
    std::cout << "Trace-pipeline throughput, workload " << bench
              << " (best of " << reps << ")\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    std::ofstream js(json_path);
    if (!js)
        fatal("cannot write %s", json_path.c_str());
    js << "{\n"
       << "  \"workload\": \"" << bench << "\",\n"
       << "  \"scale\": " << opts.scale.factor << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"paths\": {\n";
    for (size_t i = 0; i < 3; ++i) {
        const Row &row = rows[i];
        js << "    \"" << row.name << "\": {\"instrs\": "
           << row.r->instrs << ", \"seconds\": " << row.r->seconds
           << ", \"instrs_per_sec\": " << row.r->instrsPerSec() << "}"
           << (i + 1 < 3 ? "," : "") << "\n";
    }
    js << "  },\n"
       << "  \"speedup\": {\"batched_vs_scalar\": " << speedup_batched
       << ", \"replay_vs_scalar\": " << speedup_replay << "}\n"
       << "}\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
