/**
 * @file
 * Load generator for the sweep service: an in-process SweepServer on a
 * temp Unix socket, hammered by N concurrent client connections with a
 * mix of small sweep grids. Measures
 *
 *   cold         - the distinct request mix once, one client, every
 *                  control trace and recording built from scratch;
 *   warm         - the same mix again on the same single client, served
 *                  from the content-addressed RecordingCache; the
 *                  cold/warm mean ratio isolates what caching saves at
 *                  equal concurrency;
 *   warm-concur  - the mix round-robined by all clients at once: tail
 *                  latency (p50/p95/p99) of a warm server under load.
 *
 * Every warm response is byte-compared against the cold response of
 * the same request (identical payloads is the service's core
 * guarantee; "wall" timing is volatile and excluded), so the benchmark
 * doubles as an end-to-end identity check under concurrency. Emits
 * BENCH_sweepd.json (--json overrides; CI uploads it).
 *
 * Flags: --clients N (default 8), --iters N (warm requests per client,
 * default 25), --jobs N (server pool width, default 0 = hardware),
 * --scale F (workload scale of the request mix, default 0.25),
 * --json <path>.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "service/protocol.hh"
#include "service/sweep_server.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table_writer.hh"

using namespace loopspec;

namespace
{

double
now()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double>(clk::now().time_since_epoch())
        .count();
}

/** Submit one sweep request and read back the response JSON. Any
 *  transport error or ErrResp is fatal: the bench asserts the service
 *  works, it does not tolerate it failing. */
std::string
submit(int fd, const std::string &payload)
{
    std::string err = writeFrame(fd, MsgType::SweepReq, payload);
    if (!err.empty())
        fatal("%s", err.c_str());
    MsgType type{};
    std::string response;
    bool eof = false;
    err = readFrame(fd, &type, &response, kMaxResponseBytes, &eof);
    if (!err.empty())
        fatal("%s", err.c_str());
    if (eof)
        fatal("server closed the connection mid-benchmark");
    if (type != MsgType::JsonResp)
        fatal("sweep request failed: %s", response.c_str());
    return response;
}

/** Strip the volatile wall-clock block so responses can be compared
 *  byte-for-byte (same filter the CI smoke test applies with grep). */
std::string
stripWall(const std::string &json)
{
    std::string out;
    size_t start = 0;
    while (start < json.size()) {
        size_t end = json.find('\n', start);
        if (end == std::string::npos)
            end = json.size();
        const std::string line = json.substr(start, end - start);
        if (line.find("swept_seconds") == std::string::npos)
            out += line + "\n";
        start = end + 1;
    }
    return out;
}

struct Percentiles
{
    double p50 = 0.0, p95 = 0.0, p99 = 0.0, mean = 0.0;
};

Percentiles
percentiles(std::vector<double> lat)
{
    Percentiles p;
    if (lat.empty())
        return p;
    std::sort(lat.begin(), lat.end());
    const auto at = [&lat](double q) {
        size_t i = static_cast<size_t>(q * (lat.size() - 1));
        return lat[i];
    };
    p.p50 = at(0.50);
    p.p95 = at(0.95);
    p.p99 = at(0.99);
    for (double v : lat)
        p.mean += v;
    p.mean /= static_cast<double>(lat.size());
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv,
                 {"clients", "iters", "jobs", "scale", "json"});
    const unsigned clients =
        static_cast<unsigned>(args.getUint("clients", 8));
    const unsigned iters =
        static_cast<unsigned>(args.getUint("iters", 25));
    const std::string scale = args.getString("scale", "0.25");
    const std::string json_path =
        args.getString("json", "BENCH_sweepd.json");
    if (clients < 1 || iters < 1)
        fatal("--clients and --iters must be >= 1");

    SweepServerConfig cfg;
    cfg.socketPath = strprintf("/tmp/bench_sweepd_%d.sock",
                               static_cast<int>(::getpid()));
    cfg.service.jobs = static_cast<unsigned>(args.getUint("jobs", 0));
    SweepServer server(cfg);
    std::string err = server.start();
    if (!err.empty())
        fatal("%s", err.c_str());

    // The request mix: small distinct grids over distinct workload
    // subsets, so the cache holds several independent recordings and
    // warm requests exercise different entries.
    const char *grids[] = {
        "policies=str,str2;tus=2,4;cls=8",
        "policies=idle,str;tus=4;cls=8,16",
        "policies=str3;tus=2,4,8;cls=16",
        "policies=str,str1;tus=8;cls=8;ideal=1",
    };
    const char *benches[] = {"compress", "li", "perl", "m88ksim"};
    std::vector<std::string> payloads;
    for (size_t g = 0; g < sizeof(grids) / sizeof(grids[0]); ++g) {
        SweepRequest req;
        req.grid = grids[g];
        req.benchmarks = benches[g];
        req.scale = scale;
        payloads.push_back(encodeSweepRequest(req));
    }

    // Cold pass: every distinct request once, serially, caches empty.
    // Then a warm pass on the same single client: the only difference
    // from cold is the cache, so the mean ratio is the cache's saving.
    std::vector<std::string> expected(payloads.size());
    std::vector<double> cold_lat;
    std::vector<double> warm_serial_lat;
    {
        int fd = connectUnixSocket(cfg.socketPath, &err);
        if (fd < 0)
            fatal("%s", err.c_str());
        for (size_t i = 0; i < payloads.size(); ++i) {
            const double t0 = now();
            expected[i] = stripWall(submit(fd, payloads[i]));
            cold_lat.push_back(now() - t0);
        }
        for (unsigned rep = 0; rep < iters; ++rep) {
            for (size_t i = 0; i < payloads.size(); ++i) {
                const double t0 = now();
                const std::string got = stripWall(submit(fd, payloads[i]));
                warm_serial_lat.push_back(now() - t0);
                if (got != expected[i])
                    fatal("warm-serial response diverges from cold "
                          "response for request %zu",
                          i);
            }
        }
        ::close(fd);
    }

    // Warm concurrent pass: all clients at once, round-robin over the
    // mix; every response must match the cold response of the same
    // request.
    std::vector<std::vector<double>> warm_lat(clients);
    std::vector<std::string> mismatch(clients);
    std::vector<std::thread> threads;
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::string cerr_str;
            int fd = connectUnixSocket(cfg.socketPath, &cerr_str);
            if (fd < 0)
                fatal("%s", cerr_str.c_str());
            for (unsigned i = 0; i < iters; ++i) {
                const size_t which = (c + i) % payloads.size();
                const double t0 = now();
                const std::string got =
                    stripWall(submit(fd, payloads[which]));
                warm_lat[c].push_back(now() - t0);
                if (got != expected[which] && mismatch[c].empty())
                    mismatch[c] = strprintf(
                        "client %u iter %u: warm response diverges "
                        "from cold response for request %zu",
                        c, i, which);
            }
            ::close(fd);
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (const std::string &m : mismatch) {
        if (!m.empty())
            fatal("%s", m.c_str());
    }

    const CacheStats cache = server.service().cacheStats();
    server.stop();

    std::vector<double> warm_all;
    for (const auto &v : warm_lat)
        warm_all.insert(warm_all.end(), v.begin(), v.end());
    const Percentiles cold = percentiles(cold_lat);
    const Percentiles warm_serial = percentiles(warm_serial_lat);
    const Percentiles warm = percentiles(warm_all);
    const double speedup =
        warm_serial.mean > 0.0 ? cold.mean / warm_serial.mean : 0.0;

    TableWriter t({"phase", "requests", "p50 ms", "p95 ms", "p99 ms",
                   "mean ms"});
    const auto phase = [&t](const char *name, size_t n,
                            const Percentiles &p) {
        t.row();
        t.cell(std::string(name));
        t.cell(static_cast<uint64_t>(n));
        t.cell(p.p50 * 1e3, 2);
        t.cell(p.p95 * 1e3, 2);
        t.cell(p.p99 * 1e3, 2);
        t.cell(p.mean * 1e3, 2);
    };
    phase("cold", cold_lat.size(), cold);
    phase("warm-serial", warm_serial_lat.size(), warm_serial);
    phase(strprintf("warm-%uclients", clients).c_str(), warm_all.size(),
          warm);
    std::cout << "sweepd load (" << clients << " clients x " << iters
              << " warm requests, scale " << scale << ")\n";
    t.print(std::cout);
    std::cout << "warm-vs-cold mean speedup: "
              << strprintf("%.1f", speedup) << "x  (cache: " << cache.hits
              << " hits, " << cache.misses << " misses, "
              << cache.entries << " entries, " << cache.bytes
              << " B)\n"
              << "all " << warm_serial_lat.size() + warm_all.size()
              << " warm responses byte-identical to cold responses\n";

    std::ofstream js(json_path);
    if (!js)
        fatal("cannot write %s", json_path.c_str());
    const auto block = [&js](const char *name, size_t n,
                             const Percentiles &p, const char *tail) {
        js << "  \"" << name << "\": {\"requests\": " << n
           << ", \"p50_ms\": " << p.p50 * 1e3
           << ", \"p95_ms\": " << p.p95 * 1e3
           << ", \"p99_ms\": " << p.p99 * 1e3
           << ", \"mean_ms\": " << p.mean * 1e3 << "}" << tail << "\n";
    };
    js << "{\n"
       << "  \"clients\": " << clients << ",\n"
       << "  \"iters_per_client\": " << iters << ",\n"
       << "  \"scale\": " << scale << ",\n"
       << "  \"distinct_requests\": " << payloads.size() << ",\n";
    block("cold", cold_lat.size(), cold, ",");
    block("warm_serial", warm_serial_lat.size(), warm_serial, ",");
    block("warm_concurrent", warm_all.size(), warm, ",");
    js << "  \"speedup\": {\"warm_vs_cold\": " << speedup << "},\n"
       << "  \"cache\": {\"hits\": " << cache.hits
       << ", \"misses\": " << cache.misses
       << ", \"insertions\": " << cache.insertions
       << ", \"evictions\": " << cache.evictions
       << ", \"entries\": " << cache.entries
       << ", \"bytes\": " << cache.bytes << "},\n"
       << "  \"identity\": \"warm responses byte-identical to cold\"\n"
       << "}\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
