/**
 * @file
 * Trace-container I/O benchmark (docs/TRACE_FORMAT.md): encode/write and
 * read/decode throughput for both encodings, the varint compression
 * ratio, and replay throughput of the two out-of-core paths —
 *
 *   mmap      - MappedTraceFile (CRCs verified at open) + whole-image
 *               decode into a materialized ControlTrace, then the
 *               in-memory replayControlTrace. Fastest, but holds the
 *               full transfer vector.
 *   streaming - TraceFileStreamer's bounded-buffer chunked replay; the
 *               peak buffered byte count is reported so the artifact
 *               records the out-of-core guarantee next to its cost.
 *
 * Both replays drive an identical LoopDetector + LoopStats pipeline and
 * must agree with a direct replay of the recorded trace on every
 * Table-1 statistic; any disagreement is fatal. Emits
 * BENCH_trace_io.json (--json overrides) for the perf trajectory; the
 * CI perf-smoke step uploads it.
 *
 * Flags: --benchmark <name> (default compress), --reps N (default 3,
 * best-of-N), --json <path>, plus the standard --scale/--max-instrs/
 * --cls.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/runner.hh"
#include "loop/loop_detector.hh"
#include "loop/loop_stats.hh"
#include "speculation/event_record.hh"
#include "trace_io/stream_reader.hh"
#include "trace_io/trace_codec.hh"
#include "tracegen/control_trace.hh"
#include "tracegen/trace_engine.hh"
#include "util/logging.hh"
#include "util/table_writer.hh"

using namespace loopspec;

namespace
{

double
now()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double>(clk::now().time_since_epoch())
        .count();
}

/** Best-of-reps wall time of @p once (which returns its own check
 *  value so the work cannot be dead-code-eliminated). */
template <typename Fn>
double
best(unsigned reps, Fn &&once)
{
    double best_s = 0.0;
    for (unsigned i = 0; i < reps; ++i) {
        double t0 = now();
        once();
        double s = now() - t0;
        if (i == 0 || s < best_s)
            best_s = s;
    }
    return best_s;
}

double
mbPerSec(uint64_t bytes, double seconds)
{
    return seconds > 0.0
               ? static_cast<double>(bytes) / (1024.0 * 1024.0) / seconds
               : 0.0;
}

double
perSec(uint64_t count, double seconds)
{
    return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

/** Detector + LoopStats replay pipeline shared by every path. */
template <typename Fn>
LoopStatsReport
replayStats(size_t cls, Fn &&go)
{
    LoopDetector det({cls});
    LoopStats stats;
    det.addListener(&stats);
    go(det);
    return stats.report();
}

void
checkAgreement(const char *what, const LoopStatsReport &ref,
               const LoopStatsReport &got)
{
    if (ref.totalInstrs != got.totalInstrs ||
        ref.staticLoops != got.staticLoops ||
        ref.totalExecs != got.totalExecs ||
        ref.totalIters != got.totalIters) {
        fatal("%s replay disagrees with in-memory replay (instrs %llu "
              "vs %llu, loops %llu vs %llu, execs %llu vs %llu)",
              what, static_cast<unsigned long long>(got.totalInstrs),
              static_cast<unsigned long long>(ref.totalInstrs),
              static_cast<unsigned long long>(got.staticLoops),
              static_cast<unsigned long long>(ref.staticLoops),
              static_cast<unsigned long long>(got.totalExecs),
              static_cast<unsigned long long>(ref.totalExecs));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts =
        parseRunOptions(argc, argv, {"benchmark", "reps", "json"}, &args);
    const std::string bench = args->getString("benchmark", "compress");
    const unsigned reps =
        static_cast<unsigned>(args->getUint("reps", 3));
    const std::string json_path =
        args->getString("json", "BENCH_trace_io.json");

    // One functional pass records the trace + recording to measure on.
    Program prog = buildWorkload(bench, opts.scale);
    EngineConfig ecfg;
    ecfg.maxInstrs = opts.maxInstrs;
    ControlTrace ctrace;
    LoopEventRecording recording;
    {
        TraceEngine engine(prog, ecfg);
        ControlTraceRecorder crec;
        LoopDetector det({opts.clsEntries});
        LoopEventRecorder lrec;
        det.addListener(&lrec);
        engine.addObserver(&crec);
        engine.addObserver(&det);
        engine.run();
        ctrace = crec.take();
        recording = lrec.take();
    }

    const std::string dir = "."; // scratch files live beside the JSON
    struct EncStat
    {
        const char *name;
        TraceEncoding enc;
        uint64_t traceBytes = 0;
        uint64_t recBytes = 0;
        double writeSec = 0.0;
        double readSec = 0.0;
    };
    EncStat encs[] = {{"raw", TraceEncoding::Raw},
                      {"varint", TraceEncoding::Varint}};

    for (EncStat &e : encs) {
        e.traceBytes = encodeControlTrace(ctrace, e.enc).size();
        e.recBytes = encodeRecording(recording, e.enc).size();
        std::string path = traceFilePath(
            dir, strprintf("bench_io_%s", e.name), kControlTraceExt);
        e.writeSec = best(reps, [&] {
            writeControlTraceFile(path, ctrace, e.enc);
        });
        e.readSec = best(reps, [&] {
            ControlTrace back = readControlTraceFile(path);
            if (back.totalInstrs != ctrace.totalInstrs)
                fatal("%s read-back lost instructions", e.name);
        });
        std::remove(path.c_str());
    }
    const double trace_ratio =
        encs[0].traceBytes
            ? static_cast<double>(encs[1].traceBytes) / encs[0].traceBytes
            : 0.0;
    const double rec_ratio =
        encs[0].recBytes
            ? static_cast<double>(encs[1].recBytes) / encs[0].recBytes
            : 0.0;

    // Replay paths, all against the raw-encoded container.
    const std::string rpath =
        traceFilePath(dir, "bench_io_replay", kControlTraceExt);
    writeControlTraceFile(rpath, ctrace, TraceEncoding::Raw);

    LoopStatsReport ref = replayStats(opts.clsEntries, [&](auto &det) {
        return replayControlTrace(ctrace, det);
    });

    LoopStatsReport mmap_stats;
    double mmap_sec = best(reps, [&] {
        std::string err;
        auto map = MappedTraceFile::open(rpath, &err);
        if (!map)
            fatal("%s", err.c_str());
        ControlTrace back;
        err = decodeControlTrace(map->bytes(), map->fileBytes(), &back);
        if (!err.empty())
            fatal("%s", err.c_str());
        mmap_stats = replayStats(opts.clsEntries, [&](auto &det) {
            return replayControlTrace(back, det);
        });
    });
    checkAgreement("mmap", ref, mmap_stats);

    LoopStatsReport stream_stats;
    size_t stream_peak = 0;
    double stream_sec = best(reps, [&] {
        std::string err;
        auto streamer = TraceFileStreamer::open(rpath, {}, &err);
        if (!streamer)
            fatal("%s", err.c_str());
        stream_stats = replayStats(opts.clsEntries, [&](auto &det) {
            std::string rerr = streamer->replayControl(det);
            if (!rerr.empty())
                fatal("%s", rerr.c_str());
            return streamer->totalInstrs();
        });
        stream_peak = streamer->peakBufferBytes();
    });
    checkAgreement("streaming", ref, stream_stats);
    std::remove(rpath.c_str());

    const uint64_t instrs = ctrace.totalInstrs;

    TableWriter t({"metric", "raw", "varint"});
    t.row();
    t.cell(std::string("container bytes"));
    t.cell(encs[0].traceBytes);
    t.cell(encs[1].traceBytes);
    t.row();
    t.cell(std::string("write MB/s"));
    t.cell(mbPerSec(encs[0].traceBytes, encs[0].writeSec), 1);
    t.cell(mbPerSec(encs[1].traceBytes, encs[1].writeSec), 1);
    t.row();
    t.cell(std::string("read MB/s"));
    t.cell(mbPerSec(encs[0].traceBytes, encs[0].readSec), 1);
    t.cell(mbPerSec(encs[1].traceBytes, encs[1].readSec), 1);
    std::cout << "Trace-container I/O, workload " << bench << " ("
              << instrs << " instrs, best of " << reps << ")\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    std::cout << "varint/raw size ratio: trace "
              << strprintf("%.3f", trace_ratio) << ", recording "
              << strprintf("%.3f", rec_ratio) << "\n"
              << "replay Minstr/s: mmap "
              << strprintf("%.2f", perSec(instrs, mmap_sec) / 1e6)
              << ", streaming "
              << strprintf("%.2f", perSec(instrs, stream_sec) / 1e6)
              << " (peak buffer " << stream_peak << " B of "
              << encs[0].traceBytes << " B file)\n";

    std::ofstream js(json_path);
    if (!js)
        fatal("cannot write %s", json_path.c_str());
    js << "{\n"
       << "  \"workload\": \"" << bench << "\",\n"
       << "  \"scale\": " << opts.scale.factor << ",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"instrs\": " << instrs << ",\n"
       << "  \"encodings\": {\n";
    for (size_t i = 0; i < 2; ++i) {
        const EncStat &e = encs[i];
        js << "    \"" << e.name << "\": {\"trace_bytes\": "
           << e.traceBytes << ", \"recording_bytes\": " << e.recBytes
           << ", \"write_mb_per_sec\": "
           << mbPerSec(e.traceBytes, e.writeSec)
           << ", \"read_mb_per_sec\": "
           << mbPerSec(e.traceBytes, e.readSec) << "}"
           << (i == 0 ? "," : "") << "\n";
    }
    js << "  },\n"
       << "  \"compression_ratio\": {\"trace\": " << trace_ratio
       << ", \"recording\": " << rec_ratio << "},\n"
       << "  \"replay\": {\n"
       << "    \"mmap_instrs_per_sec\": " << perSec(instrs, mmap_sec)
       << ",\n"
       << "    \"streaming_instrs_per_sec\": "
       << perSec(instrs, stream_sec) << ",\n"
       << "    \"streaming_peak_buffer_bytes\": " << stream_peak << "\n"
       << "  }\n"
       << "}\n";
    std::cout << "wrote " << json_path << "\n";
    return 0;
}
