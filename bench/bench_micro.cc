/**
 * @file
 * google-benchmark microbenchmarks for the hardware structures and the
 * simulation substrate: CLS search/push/pop, LoopTable lookup at the
 * paper's sizes, detector per-instruction overhead, trace-engine
 * throughput, and event-driven TU-simulator throughput.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "harness/runner.hh"
#include "loop/loop_detector.hh"
#include "speculation/event_record.hh"
#include "speculation/spec_sim.hh"
#include "tables/loop_table.hh"
#include "trace_io/replay_source.hh"
#include "tracegen/control_trace.hh"
#include "tracegen/trace_engine.hh"
#include "workloads/workload.hh"

using namespace loopspec;

namespace
{

/** CLS push/find/pop cycle at a given occupancy. */
void
BM_ClsSearch(benchmark::State &state)
{
    CurrentLoopStack cls(16);
    const size_t depth = static_cast<size_t>(state.range(0));
    for (size_t i = 0; i < depth; ++i)
        cls.push({static_cast<uint32_t>(0x1000 + 64 * i),
                  static_cast<uint32_t>(0x1040 + 64 * i), i + 1, 2});
    uint32_t probe = 0x1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cls.find(probe));
        probe += 64;
        if (probe >= 0x1000 + 64 * depth)
            probe = 0x1000;
    }
}
BENCHMARK(BM_ClsSearch)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/** LoopTable associative lookup at the paper's sizes. */
void
BM_LoopTableLookup(benchmark::State &state)
{
    struct Payload
    {
        uint64_t count = 0;
    };
    LoopTable<Payload> table(static_cast<size_t>(state.range(0)));
    for (int64_t i = 0; i < state.range(0); ++i)
        table.insert(static_cast<uint32_t>(0x2000 + 32 * i));
    uint32_t probe = 0x2000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.find(probe));
        table.touch(probe);
        probe += 32;
        if (probe >= 0x2000 + 32 * state.range(0))
            probe = 0x2000;
    }
}
BENCHMARK(BM_LoopTableLookup)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

/** Raw trace-engine throughput (instructions/second) on compress:
 *  batched fast path vs the scalar step() reference. */
void
BM_EngineThroughput(benchmark::State &state)
{
    WorkloadScale scale{0.05};
    uint64_t instrs = 0;
    for (auto _ : state) {
        Program p = buildCompress(scale);
        TraceEngine engine(p);
        instrs += engine.run();
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineThroughput)->Unit(benchmark::kMillisecond);

void
BM_EngineThroughputScalar(benchmark::State &state)
{
    WorkloadScale scale{0.05};
    uint64_t instrs = 0;
    for (auto _ : state) {
        Program p = buildCompress(scale);
        TraceEngine engine(p);
        DynInstr d;
        while (engine.step(d)) {
        }
        instrs += engine.retired();
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineThroughputScalar)->Unit(benchmark::kMillisecond);

/**
 * Forces AoS record delivery onto a hot-plane consumer: default
 * BatchNeed::FullRecords plus the default materializing onInstrBatchSoA
 * shim, forwarding the rebuilt 72-byte records to the wrapped observer.
 * This is the per-batch cost of an observer that never ported to hot
 * planes (bench_throughput's batched_aos / replay_seq rows).
 */
class AosDeliveryShim : public TraceObserver
{
  public:
    explicit AosDeliveryShim(TraceObserver *o) : inner(o) {}

    void onInstr(const DynInstr &d) override { inner->onInstr(d); }
    void
    onInstrBatchCtrl(const DynInstr *instrs, size_t count,
                     const uint32_t *ctrl, size_t num_ctrl) override
    {
        inner->onInstrBatchCtrl(instrs, count, ctrl, num_ctrl);
    }
    void onTraceEnd(uint64_t total) override { inner->onTraceEnd(total); }

  private:
    TraceObserver *inner;
};

/** Engine + detector + stats (the Table-1 pipeline) throughput:
 *  0 = SoA hot-plane batches (default), 1 = scalar (step) delivery,
 *  2 = direct AoS record fill (EngineConfig::soaBatches = false, the
 *  non-GNU-compiler fallback), 3 = AoS records materialized from the
 *  cold planes by the compatibility shim. */
void
BM_DetectorThroughput(benchmark::State &state)
{
    WorkloadScale scale{0.05};
    uint64_t instrs = 0;
    const int mode = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Program p = buildCompress(scale);
        EngineConfig cfg;
        cfg.soaBatches = mode != 2;
        TraceEngine engine(p, cfg);
        LoopDetector det({16});
        LoopStats stats;
        det.addListener(&stats);
        AosDeliveryShim shim(&det);
        engine.addObserver(
            mode == 3 ? static_cast<TraceObserver *>(&shim) : &det);
        if (mode == 1) {
            DynInstr d;
            while (engine.step(d)) {
            }
            instrs += engine.retired();
        } else {
            instrs += engine.run();
        }
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DetectorThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

/** Detector re-run over a prerecorded control-event trace (the cost of
 *  one derived configuration in a record/replay sweep). */
void
BM_ControlReplayThroughput(benchmark::State &state)
{
    WorkloadScale scale{0.05};
    Program p = buildCompress(scale);
    TraceEngine engine(p);
    ControlTraceRecorder rec;
    engine.addObserver(&rec);
    engine.run();
    ControlTrace trace = rec.take();

    uint64_t instrs = 0;
    for (auto _ : state) {
        LoopDetector det({16});
        LoopStats stats;
        det.addListener(&stats);
        instrs += replayControlTrace(trace, det);
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ControlReplayThroughput)->Unit(benchmark::kMillisecond);

/** Four derived CLS configurations over one recorded control trace:
 *  0 = sequential AoS-materializing passes (replay as it ran before
 *  this optimization round), 1 = sequential SoA gap-free synthesis,
 *  2 = interleaved SoA fixed-size chunks (round-robin through
 *  interleaveReplay, one cache pass per chunk). */
void
BM_MultiReplayThroughput(benchmark::State &state)
{
    WorkloadScale scale{0.05};
    Program p = buildCompress(scale);
    TraceEngine engine(p);
    ControlTraceRecorder rec;
    engine.addObserver(&rec);
    engine.run();
    ControlTrace trace = rec.take();

    const int mode = static_cast<int>(state.range(0));
    const size_t clsSizes[] = {2, 4, 8, 16};
    uint64_t instrs = 0;
    for (auto _ : state) {
        std::vector<std::unique_ptr<LoopDetector>> dets;
        std::vector<std::unique_ptr<LoopStats>> stats;
        for (size_t cls : clsSizes) {
            dets.push_back(std::make_unique<LoopDetector>(
                DetectorConfig{cls}));
            stats.push_back(std::make_unique<LoopStats>());
            dets.back()->addListener(stats.back().get());
        }
        if (mode == 2) {
            std::vector<std::unique_ptr<ControlTraceSource>> sources;
            std::vector<ReplaySource *> ptrs;
            for (auto &det : dets) {
                sources.push_back(
                    std::make_unique<ControlTraceSource>(trace, *det));
                ptrs.push_back(sources.back().get());
            }
            interleaveReplay(ptrs);
            for (auto &src : sources)
                instrs += src->replayed();
        } else if (mode == 1) {
            for (auto &det : dets)
                instrs += replayControlTrace(trace, *det);
        } else {
            for (auto &det : dets) {
                AosDeliveryShim shim(det.get());
                instrs += replayControlTrace(trace, shim);
            }
        }
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MultiReplayThroughput)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

/** Event-driven TU simulator throughput over a prebuilt recording. */
void
BM_SpecSimThroughput(benchmark::State &state)
{
    WorkloadScale scale{0.1};
    Program p = buildM88ksim(scale);
    TraceEngine engine(p);
    LoopDetector det({16});
    LoopEventRecorder rec;
    det.addListener(&rec);
    engine.addObserver(&det);
    engine.run();
    LoopEventRecording recording = rec.take();

    uint64_t events = 0;
    for (auto _ : state) {
        SpecConfig cfg{static_cast<unsigned>(state.range(0)),
                       SpecPolicy::Str, 0};
        ThreadSpecSimulator sim(recording, cfg);
        benchmark::DoNotOptimize(sim.run());
        events += recording.events.size();
    }
    state.counters["events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SpecSimThroughput)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
