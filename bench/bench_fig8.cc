/**
 * @file
 * Reproduces Figure 8: data-speculation statistics — the share of
 * iterations following each loop's most frequent path, live-in register
 * and memory value predictability (last value + stride), and the share
 * of iterations with all live-ins predicted. Paper anchors: ~85% of
 * iterations follow the modal path; live-in predictability is "high".
 */

#include <iostream>

#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});

    CollectFlags flags;
    flags.dataSpec = true;

    TableWriter t({"bench", "same path%", "lr pred%", "lm pred%",
                   "all lr%", "all lm%", "all data%"});

    double sums[6] = {};
    unsigned count = 0;
    for (const auto &name : opts.selected()) {
        WorkloadArtifacts a = runWorkload(name, opts, flags);
        const auto &r = a.dataSpec;
        double vals[6] = {r.samePathPct(), r.lrPredPct(), r.lmPredPct(),
                          r.allLrPct(),    r.allLmPct(),  r.allDataPct()};
        t.row();
        t.cell(name);
        for (double v : vals)
            t.cell(v, 2);
        for (int i = 0; i < 6; ++i)
            sums[i] += vals[i];
        ++count;
    }
    t.row();
    t.cell(std::string("AVG"));
    for (int i = 0; i < 6; ++i)
        t.cell(sums[i] / count, 2);
    t.row();
    t.cell(std::string("paper"));
    t.cell(std::string("~85"));
    for (int i = 1; i < 6; ++i)
        t.cell(std::string("high"));

    std::cout << "Figure 8: data speculation statistics "
                 "(suite average in last rows)\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
