/**
 * @file
 * Reproduces Figure 8: data-speculation statistics — the share of
 * iterations following each loop's most frequent path, live-in register
 * and memory value predictability (last value + stride), and the share
 * of iterations with all live-ins predicted. Declared as a
 * dataSpec-artifact sweep grid (workloads traced in parallel under
 * --jobs). Paper anchors: ~85% of iterations follow the modal path;
 * live-in predictability is "high".
 */

#include <iostream>
#include <memory>

#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(argc, argv, {"json"}, &args);

    SweepGrid grid = sweepGridFromOptions(opts);
    grid.dataSpec = true;
    SweepResult r = runSpecSweep(grid, opts.jobs);

    // The six Figure-8 series, in column order.
    using RowFn = double (*)(const SweepRow &);
    const RowFn cols[6] = {
        +[](const SweepRow &x) { return x.dataSpec.samePathPct(); },
        +[](const SweepRow &x) { return x.dataSpec.lrPredPct(); },
        +[](const SweepRow &x) { return x.dataSpec.lmPredPct(); },
        +[](const SweepRow &x) { return x.dataSpec.allLrPct(); },
        +[](const SweepRow &x) { return x.dataSpec.allLmPct(); },
        +[](const SweepRow &x) { return x.dataSpec.allDataPct(); },
    };

    TableWriter t({"bench", "same path%", "lr pred%", "lm pred%",
                   "all lr%", "all lm%", "all data%"});
    for (size_t w = 0; w < grid.workloads.size(); ++w) {
        const SweepRow &row = r.row(w);
        t.row();
        t.cell(row.workload);
        for (RowFn fn : cols)
            t.cell(fn(row), 2);
    }
    t.row();
    t.cell(std::string("AVG"));
    for (RowFn fn : cols)
        t.cell(r.meanRowOverWorkloads(0, fn), 2);
    t.row();
    t.cell(std::string("paper"));
    t.cell(std::string("~85"));
    for (int i = 1; i < 6; ++i)
        t.cell(std::string("high"));

    std::cout << "Figure 8: data speculation statistics "
                 "(suite average in last rows)\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    writeSweepJsonFile(args->getString("json", ""), r, opts.jobs);
    return 0;
}
