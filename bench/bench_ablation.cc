/**
 * @file
 * Ablation study for the design points docs/DESIGN.md calls out:
 *   (a) CLS depth — overflow losses and detection quality vs capacity
 *       (the paper asserts 16 entries suffice for SPEC95);
 *   (b) STR(i) nest limit — TPC and hit ratio as i sweeps 1..6 and
 *       beyond (STR == i -> infinity);
 *   (c) TU scaling beyond the paper's 16 contexts;
 *   (d) LRU vs the §2.3.2 nest-aware LET/LIT replacement (the paper
 *       found the difference negligible).
 * Run on a subset by default (deep-nesting and squash-sensitive
 * programs); --benchmarks overrides.
 */

#include <iostream>

#include "harness/runner.hh"
#include "loop/loop_detector.hh"
#include "speculation/spec_sim.hh"
#include "tables/hit_ratio.hh"
#include "tracegen/trace_engine.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});
    if (opts.benchmarks.empty())
        opts.benchmarks = {"go", "fpppp", "perl", "mgrid", "compress"};

    // (a) CLS capacity sweep.
    std::cout << "Ablation A: CLS capacity (overflow drops / detected "
                 "executions)\n";
    TableWriter a({"bench", "cls=4", "cls=8", "cls=12", "cls=16"});
    for (const auto &name : opts.benchmarks) {
        a.row();
        a.cell(name);
        for (size_t cls : {4u, 8u, 12u, 16u}) {
            RunOptions o = opts;
            o.clsEntries = cls;
            CollectFlags f;
            f.loopStats = true;
            WorkloadArtifacts art = runWorkload(name, o, f);
            a.cell(strprintf("%llu/%llu",
                             static_cast<unsigned long long>(
                                 art.loopStats.overflowDrops),
                             static_cast<unsigned long long>(
                                 art.loopStats.totalExecs)));
        }
    }
    a.print(std::cout);

    // (b) STR(i) nest-limit sweep at 4 TUs.
    std::cout << "\nAblation B: STR(i) nest limit, 4 TUs "
                 "(TPC / hit%)\n";
    TableWriter bt({"bench", "i=1", "i=2", "i=3", "i=4", "i=6", "STR"});
    for (const auto &name : opts.benchmarks) {
        CollectFlags f;
        f.recording = true;
        WorkloadArtifacts art = runWorkload(name, opts, f);
        bt.row();
        bt.cell(name);
        for (unsigned i : {1u, 2u, 3u, 4u, 6u}) {
            SpecConfig cfg{4, SpecPolicy::StrI, i};
            SpecStats s = ThreadSpecSimulator(art.recording, cfg).run();
            bt.cell(strprintf("%.2f/%.0f", s.tpc(),
                              100.0 * s.hitRatio()));
        }
        SpecConfig cfg{4, SpecPolicy::Str, 0};
        SpecStats s = ThreadSpecSimulator(art.recording, cfg).run();
        bt.cell(strprintf("%.2f/%.0f", s.tpc(), 100.0 * s.hitRatio()));
    }
    bt.print(std::cout);

    // (d) LRU vs the §2.3.2 nest-aware replacement: the paper evaluated
    // this variant and found "the improvement on the hit ratio is
    // negligible with respect to the LRU algorithm".
    std::cout << "\nAblation D: LET/LIT replacement policy "
                 "(hit% LRU vs nest-aware, 4 entries)\n";
    TableWriter dt({"bench", "LET lru", "LET nest", "LIT lru",
                    "LIT nest"});
    for (const auto &name : opts.benchmarks) {
        Program prog = buildWorkload(name, opts.scale);
        TraceEngine engine(prog);
        LoopDetector det({opts.clsEntries});
        LetHitMeter let_lru(4, TableReplacement::Lru);
        LetHitMeter let_nest(4, TableReplacement::NestAware);
        LitHitMeter lit_lru(4, TableReplacement::Lru);
        LitHitMeter lit_nest(4, TableReplacement::NestAware);
        det.addListener(&let_lru);
        det.addListener(&let_nest);
        det.addListener(&lit_lru);
        det.addListener(&lit_nest);
        engine.addObserver(&det);
        engine.run();
        dt.row();
        dt.cell(name);
        dt.cell(100.0 * let_lru.result().ratio(), 2);
        dt.cell(100.0 * let_nest.result().ratio(), 2);
        dt.cell(100.0 * lit_lru.result().ratio(), 2);
        dt.cell(100.0 * lit_nest.result().ratio(), 2);
    }
    dt.print(std::cout);

    // (e) Finite LET capacity behind the STR predictor: connects the
    // Figure-4 LET hit ratios to delivered TPC.
    std::cout << "\nAblation E: STR TPC vs LET capacity, 4 TUs\n";
    TableWriter et({"bench", "LET=4", "LET=8", "LET=16", "unbounded"});
    for (const auto &name : opts.benchmarks) {
        CollectFlags f;
        f.recording = true;
        WorkloadArtifacts art = runWorkload(name, opts, f);
        et.row();
        et.cell(name);
        for (size_t let : {4u, 8u, 16u, 0u}) {
            SpecConfig cfg{4, SpecPolicy::Str, 3, DataMode::None, let};
            SpecStats s = ThreadSpecSimulator(art.recording, cfg).run();
            et.cell(s.tpc(), 2);
        }
    }
    et.print(std::cout);

    // (c) TU scaling beyond the paper.
    std::cout << "\nAblation C: STR TPC scaling to 64 TUs\n";
    TableWriter ct({"bench", "4", "16", "32", "64"});
    for (const auto &name : opts.benchmarks) {
        CollectFlags f;
        f.recording = true;
        WorkloadArtifacts art = runWorkload(name, opts, f);
        ct.row();
        ct.cell(name);
        for (unsigned tu : {4u, 16u, 32u, 64u}) {
            SpecConfig cfg{tu, SpecPolicy::Str, 0};
            SpecStats s = ThreadSpecSimulator(art.recording, cfg).run();
            ct.cell(s.tpc(), 2);
        }
    }
    ct.print(std::cout);
    return 0;
}
