/**
 * @file
 * Ablation study for the design points docs/DESIGN.md calls out:
 *   (a) CLS depth — overflow losses and detection quality vs capacity
 *       (the paper asserts 16 entries suffice for SPEC95);
 *   (b) STR(i) nest limit — TPC and hit ratio as i sweeps 1..6 and
 *       beyond (STR == i -> infinity);
 *   (c) TU scaling beyond the paper's 16 contexts;
 *   (d) LRU vs the §2.3.2 nest-aware LET/LIT replacement (the paper
 *       found the difference negligible).
 * Run on a subset by default (deep-nesting and squash-sensitive
 * programs); --benchmarks overrides.
 *
 * Each workload is functionally executed ONCE; every ablation point is
 * derived by replay: the CLS-capacity sweep re-runs the detector over
 * the recorded control-event trace, the replacement-policy comparison
 * replays the recorded loop-event stream into fresh meters, and the
 * speculation sweeps reuse the event recording.
 */

#include <iostream>
#include <map>

#include "harness/runner.hh"
#include "loop/loop_detector.hh"
#include "loop/loop_stats.hh"
#include "speculation/spec_sim.hh"
#include "tables/hit_ratio.hh"
#include "util/table_writer.hh"

using namespace loopspec;

namespace
{

/** Detector re-run over the recorded control stream at @p cls_entries. */
LoopStatsReport
clsSweepPoint(const ControlTrace &trace, size_t cls_entries)
{
    LoopDetector det({cls_entries});
    LoopStats stats;
    det.addListener(&stats);
    replayControlTrace(trace, det);
    return stats.report();
}

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});
    if (opts.benchmarks.empty())
        opts.benchmarks = {"go", "fpppp", "perl", "mgrid", "compress"};

    // One functional pass per workload; all ablation points below are
    // replay-derived.
    std::map<std::string, WorkloadArtifacts> arts;
    for (const auto &name : opts.benchmarks) {
        CollectFlags f;
        f.recording = true;
        f.controlTrace = true;
        arts.emplace(name, runWorkload(name, opts, f));
    }

    // (a) CLS capacity sweep, replayed per size.
    std::cout << "Ablation A: CLS capacity (overflow drops / detected "
                 "executions)\n";
    TableWriter a({"bench", "cls=4", "cls=8", "cls=12", "cls=16"});
    for (const auto &name : opts.benchmarks) {
        const auto &art = arts.at(name);
        a.row();
        a.cell(name);
        for (size_t cls : {4u, 8u, 12u, 16u}) {
            LoopStatsReport r = clsSweepPoint(art.controlTrace, cls);
            a.cell(strprintf("%llu/%llu",
                             static_cast<unsigned long long>(
                                 r.overflowDrops),
                             static_cast<unsigned long long>(
                                 r.totalExecs)));
        }
    }
    a.print(std::cout);

    // (b) STR(i) nest-limit sweep at 4 TUs.
    std::cout << "\nAblation B: STR(i) nest limit, 4 TUs "
                 "(TPC / hit%)\n";
    TableWriter bt({"bench", "i=1", "i=2", "i=3", "i=4", "i=6", "STR"});
    for (const auto &name : opts.benchmarks) {
        const auto &art = arts.at(name);
        bt.row();
        bt.cell(name);
        for (unsigned i : {1u, 2u, 3u, 4u, 6u}) {
            SpecConfig cfg{4, SpecPolicy::StrI, i};
            SpecStats s = ThreadSpecSimulator(art.recording, cfg).run();
            bt.cell(strprintf("%.2f/%.0f", s.tpc(),
                              100.0 * s.hitRatio()));
        }
        SpecConfig cfg{4, SpecPolicy::Str, 0};
        SpecStats s = ThreadSpecSimulator(art.recording, cfg).run();
        bt.cell(strprintf("%.2f/%.0f", s.tpc(), 100.0 * s.hitRatio()));
    }
    bt.print(std::cout);

    // (d) LRU vs the §2.3.2 nest-aware replacement: the paper evaluated
    // this variant and found "the improvement on the hit ratio is
    // negligible with respect to the LRU algorithm". The meters consume
    // loop events only, so they run off the recorded stream.
    std::cout << "\nAblation D: LET/LIT replacement policy "
                 "(hit% LRU vs nest-aware, 4 entries)\n";
    TableWriter dt({"bench", "LET lru", "LET nest", "LIT lru",
                    "LIT nest"});
    for (const auto &name : opts.benchmarks) {
        const auto &art = arts.at(name);
        LetHitMeter let_lru(4, TableReplacement::Lru);
        LetHitMeter let_nest(4, TableReplacement::NestAware);
        LitHitMeter lit_lru(4, TableReplacement::Lru);
        LitHitMeter lit_nest(4, TableReplacement::NestAware);
        replayLoopEvents(art.recording,
                         {&let_lru, &let_nest, &lit_lru, &lit_nest});
        dt.row();
        dt.cell(name);
        dt.cell(100.0 * let_lru.result().ratio(), 2);
        dt.cell(100.0 * let_nest.result().ratio(), 2);
        dt.cell(100.0 * lit_lru.result().ratio(), 2);
        dt.cell(100.0 * lit_nest.result().ratio(), 2);
    }
    dt.print(std::cout);

    // (e) Finite LET capacity behind the STR predictor: connects the
    // Figure-4 LET hit ratios to delivered TPC.
    std::cout << "\nAblation E: STR TPC vs LET capacity, 4 TUs\n";
    TableWriter et({"bench", "LET=4", "LET=8", "LET=16", "unbounded"});
    for (const auto &name : opts.benchmarks) {
        const auto &art = arts.at(name);
        et.row();
        et.cell(name);
        for (size_t let : {4u, 8u, 16u, 0u}) {
            SpecConfig cfg{4, SpecPolicy::Str, 3, DataMode::None, let};
            SpecStats s = ThreadSpecSimulator(art.recording, cfg).run();
            et.cell(s.tpc(), 2);
        }
    }
    et.print(std::cout);

    // (c) TU scaling beyond the paper.
    std::cout << "\nAblation C: STR TPC scaling to 64 TUs\n";
    TableWriter ct({"bench", "4", "16", "32", "64"});
    for (const auto &name : opts.benchmarks) {
        const auto &art = arts.at(name);
        ct.row();
        ct.cell(name);
        for (unsigned tu : {4u, 16u, 32u, 64u}) {
            SpecConfig cfg{tu, SpecPolicy::Str, 0};
            SpecStats s = ThreadSpecSimulator(art.recording, cfg).run();
            ct.cell(s.tpc(), 2);
        }
    }
    ct.print(std::cout);
    return 0;
}
