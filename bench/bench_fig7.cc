/**
 * @file
 * Reproduces Figure 7: suite-average TPC for the IDLE, STR, STR(1),
 * STR(2) and STR(3) policies on 2/4/8/16 TUs. Paper shape: STR slightly
 * above IDLE; STR(i) below STR, improving with larger i (fewer correct
 * speculations squashed).
 */

#include <iostream>
#include <vector>

#include "bench/paper_ref.hh"
#include "harness/runner.hh"
#include "speculation/spec_sim.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});

    CollectFlags flags;
    flags.recording = true;

    struct PolicySpec
    {
        const char *name;
        SpecPolicy policy;
        unsigned nest;
    };
    const std::vector<PolicySpec> policies = {
        {"IDLE", SpecPolicy::Idle, 0},   {"STR", SpecPolicy::Str, 0},
        {"STR(1)", SpecPolicy::StrI, 1}, {"STR(2)", SpecPolicy::StrI, 2},
        {"STR(3)", SpecPolicy::StrI, 3},
    };
    const unsigned tus[] = {2, 4, 8, 16};

    // sums[policy][tu-index]
    std::vector<std::array<double, 4>> sums(policies.size());
    unsigned count = 0;

    for (const auto &name : opts.selected()) {
        WorkloadArtifacts a = runWorkload(name, opts, flags);
        for (size_t p = 0; p < policies.size(); ++p) {
            for (unsigned i = 0; i < 4; ++i) {
                SpecConfig cfg;
                cfg.numTUs = tus[i];
                cfg.policy = policies[p].policy;
                cfg.nestLimit = policies[p].nest;
                ThreadSpecSimulator sim(a.recording, cfg);
                sums[p][i] += sim.run().tpc();
            }
        }
        ++count;
    }

    TableWriter t({"TUs", "IDLE", "STR", "STR(1)", "STR(2)", "STR(3)",
                   "STR(paper)"});
    for (unsigned i = 0; i < 4; ++i) {
        t.row();
        t.cell(static_cast<uint64_t>(tus[i]));
        for (size_t p = 0; p < policies.size(); ++p)
            t.cell(sums[p][i] / count, 2);
        t.cell(paper::fig6AvgStr.at(tus[i]), 2);
    }

    std::cout << "Figure 7: average TPC by policy and TU count\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
