/**
 * @file
 * Reproduces Figure 7: suite-average TPC for the IDLE, STR, STR(1),
 * STR(2) and STR(3) policies on 2/4/8/16 TUs — a 5-policy × 4-TU grid
 * over the shared-recording sweep engine (each workload traced once, all
 * 20 configurations replayed from its recording). Paper shape: STR
 * slightly above IDLE; STR(i) below STR, improving with larger i (fewer
 * correct speculations squashed).
 */

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/paper_ref.hh"
#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(argc, argv, {"json"}, &args);

    SweepGrid grid = sweepGridFromOptions(opts);
    applyPaperAxes(&grid); // 5 policies × {2,4,8,16} TUs
    SweepResult r = runSpecSweep(grid, opts.jobs);

    std::vector<std::string> headers = {"TUs"};
    for (const GridPolicy &p : grid.policies)
        headers.push_back(p.name());
    headers.push_back("STR(paper)");
    TableWriter t(headers);
    for (size_t i = 0; i < grid.tuCounts.size(); ++i) {
        t.row();
        t.cell(static_cast<uint64_t>(grid.tuCounts[i]));
        for (size_t p = 0; p < grid.policies.size(); ++p)
            t.cell(r.meanTpc(p, i), 2);
        t.cell(paper::fig6AvgStr.at(grid.tuCounts[i]), 2);
    }

    std::cout << "Figure 7: average TPC by policy and TU count\n";
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    writeSweepJsonFile(args->getString("json", ""), r, opts.jobs);
    return 0;
}
