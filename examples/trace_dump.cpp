/**
 * @file
 * Trace dumper: disassembled retired-instruction stream with the loop
 * detector's events interleaved — the debugging view of what the CLS is
 * doing, instruction by instruction.
 *
 *   $ ./examples/trace_dump --benchmarks perl --max-instrs 150
 */

#include <cstdio>

#include "harness/runner.hh"
#include "isa/disasm.hh"
#include "loop/loop_detector.hh"
#include "tracegen/trace_engine.hh"

using namespace loopspec;

namespace
{

/** Prints events as they interleave with the instruction stream. */
class EventPrinter : public LoopListener
{
  public:
    void
    onExecStart(const ExecStartEvent &ev) override
    {
        std::printf("        >> loop 0x%x: execution %llu detected "
                    "(depth %u, B=0x%x)\n",
                    ev.loop, (unsigned long long)ev.execId, ev.depth,
                    ev.branchAddr);
    }

    void
    onIterStart(const IterEvent &ev) override
    {
        std::printf("        >> loop 0x%x: iteration %u\n", ev.loop,
                    ev.iterIndex);
    }

    void
    onExecEnd(const ExecEndEvent &ev) override
    {
        std::printf("        >> loop 0x%x: ends after %u iterations "
                    "(%s)\n",
                    ev.loop, ev.iterCount,
                    execEndReasonName(ev.reason));
    }

    void
    onSingleIterExec(const SingleIterExecEvent &ev) override
    {
        std::printf("        >> loop 0x%x: single-iteration execution\n",
                    ev.loop);
    }
};

} // namespace

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});
    if (opts.maxInstrs == 0)
        opts.maxInstrs = 200; // a dump, not a flood
    if (opts.benchmarks.empty())
        opts.benchmarks = {"compress"};

    for (const auto &name : opts.benchmarks) {
        std::printf("=== %s (first %llu instructions) ===\n",
                    name.c_str(), (unsigned long long)opts.maxInstrs);
        Program prog = buildWorkload(name, opts.scale);
        EngineConfig ecfg;
        ecfg.maxInstrs = opts.maxInstrs;
        TraceEngine engine(prog, ecfg);

        // Observers run in attach order: the disassembly printer first,
        // then the detector, so each instruction line precedes the loop
        // events it triggers.
        class InstrPrinter : public TraceObserver
        {
          public:
            explicit InstrPrinter(const Program &p) : prog(p) {}

            void
            onInstr(const DynInstr &d) override
            {
                const Instr &in = prog.fetch(d.pc);
                std::printf("%6llu  %-34s",
                            (unsigned long long)d.seq,
                            disassembleAt(d.pc, in).c_str());
                if (d.kind == CtrlKind::Branch)
                    std::printf(" %s",
                                d.taken ? "[taken]" : "[not taken]");
                if (d.isLoad)
                    std::printf(" [%lld <- mem[%llu]]",
                                (long long)d.memVal,
                                (unsigned long long)d.memAddr);
                if (d.isStore)
                    std::printf(" [mem[%llu] <- %lld]",
                                (unsigned long long)d.memAddr,
                                (long long)d.memVal);
                std::printf("\n");
            }

          private:
            const Program &prog;
        } instr_printer(prog);

        LoopDetector det({opts.clsEntries});
        EventPrinter printer;
        det.addListener(&printer);
        engine.addObserver(&instr_printer);
        engine.addObserver(&det);
        engine.run();
    }
    return 0;
}
