/**
 * @file
 * Loop profiler: run any of the 18 synthetic workloads (or all) through
 * the dynamic loop detector and print its Table-1-style profile.
 *
 *   $ ./examples/loop_profiler --benchmarks compress,go --scale 0.5
 */

#include <iostream>

#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});

    CollectFlags flags;
    flags.loopStats = true;

    TableWriter t({"bench", "instrs", "loops", "execs", "iters",
                   "iter/exec", "instr/iter", "avg nl", "max nl",
                   "1-iter execs", "loop cover%"});
    for (const auto &name : opts.selected()) {
        WorkloadArtifacts a = runWorkload(name, opts, flags);
        const auto &r = a.loopStats;
        t.row();
        t.cell(name);
        t.cell(r.totalInstrs);
        t.cell(r.staticLoops);
        t.cell(r.totalExecs);
        t.cell(r.totalIters);
        t.cell(r.itersPerExec, 2);
        t.cell(r.instrsPerIter, 2);
        t.cell(r.avgNesting, 2);
        t.cell(static_cast<uint64_t>(r.maxNesting));
        t.cell(r.singleIterExecs);
        t.cell(100.0 * r.loopCoverage, 1);
    }
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
