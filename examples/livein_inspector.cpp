/**
 * @file
 * Live-in inspector: the §4 data-speculation preview. Profiles iteration
 * paths and live-in register/memory predictability for any workload.
 *
 *   $ ./examples/livein_inspector --benchmarks swim,li
 */

#include <iostream>

#include "harness/runner.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    RunOptions opts = parseRunOptions(argc, argv, {});

    CollectFlags flags;
    flags.dataSpec = true;

    TableWriter t({"bench", "iters", "same path%", "lr pred%",
                   "lm pred%", "all lr%", "all lm%", "all data%"});
    for (const auto &name : opts.selected()) {
        WorkloadArtifacts a = runWorkload(name, opts, flags);
        const auto &r = a.dataSpec;
        t.row();
        t.cell(name);
        t.cell(r.itersEvaluated);
        t.cell(r.samePathPct(), 2);
        t.cell(r.lrPredPct(), 2);
        t.cell(r.lmPredPct(), 2);
        t.cell(r.allLrPct(), 2);
        t.cell(r.allLmPct(), 2);
        t.cell(r.allDataPct(), 2);
    }
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
