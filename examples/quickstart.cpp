/**
 * @file
 * Quickstart: build a tiny program with the ProgramBuilder, execute it on
 * the TraceEngine, and watch the LoopDetector's event stream — the whole
 * public API in ~100 lines.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "loop/loop_detector.hh"
#include "program/builder.hh"
#include "tracegen/trace_engine.hh"

using namespace loopspec;
using namespace loopspec::regs;

namespace
{

/** Prints every loop event the detector emits. */
class PrintingListener : public LoopListener
{
  public:
    void
    onExecStart(const ExecStartEvent &ev) override
    {
        std::printf("  [%6llu] exec %llu of loop 0x%x starts "
                    "(depth %u, B=0x%x)\n",
                    (unsigned long long)ev.pos,
                    (unsigned long long)ev.execId, ev.loop, ev.depth,
                    ev.branchAddr);
    }

    void
    onIterStart(const IterEvent &ev) override
    {
        std::printf("  [%6llu]   iteration %u of loop 0x%x begins\n",
                    (unsigned long long)ev.pos, ev.iterIndex, ev.loop);
    }

    void
    onExecEnd(const ExecEndEvent &ev) override
    {
        std::printf("  [%6llu] exec %llu of loop 0x%x ends: "
                    "%u iterations (%s)\n",
                    (unsigned long long)ev.pos,
                    (unsigned long long)ev.execId, ev.loop, ev.iterCount,
                    execEndReasonName(ev.reason));
    }

    void
    onSingleIterExec(const SingleIterExecEvent &ev) override
    {
        std::printf("  [%6llu] single-iteration execution of loop "
                    "0x%x\n",
                    (unsigned long long)ev.pos, ev.loop);
    }
};

} // namespace

int
main()
{
    // A 3x4 nested loop with a subroutine call in the inner body —
    // enough to see executions, iterations and the call-transparency of
    // the CLS.
    ProgramBuilder b("quickstart", 64);
    b.beginFunction("main");
    b.li(r1, 0);
    b.li(r2, 3);
    b.countedLoop(r1, r2, [&](const LoopCtx &) {
        b.li(r3, 0);
        b.li(r4, 4);
        b.countedLoop(r3, r4, [&](const LoopCtx &) {
            b.call("work");
        });
    });
    b.halt();
    b.beginFunction("work");
    b.addi(r10, r10, 1);
    b.ret();
    Program prog = b.build();

    std::printf("program '%s': %zu instructions, entry 0x%x\n",
                prog.name.c_str(), prog.size(), prog.entry);

    TraceEngine engine(prog);
    LoopDetector detector({16});
    PrintingListener printer;
    detector.addListener(&printer);
    engine.addObserver(&detector);

    uint64_t n = engine.run();
    std::printf("retired %llu instructions; r10 = %lld (expect 12)\n",
                (unsigned long long)n,
                (long long)engine.readReg(r10));
    return 0;
}
