/**
 * @file
 * Speculative multithreaded CPU demo: run a workload through the TU
 * simulator with a chosen policy and context count, print the paper's
 * §3 statistics.
 *
 *   $ ./examples/speculative_cpu --benchmarks m88ksim --tus 8 \
 *         --policy str3
 */

#include <iostream>
#include <memory>

#include "harness/runner.hh"
#include "speculation/spec_sim.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts =
        parseRunOptions(argc, argv, {"tus", "policy"}, &args);

    SpecConfig cfg;
    cfg.numTUs = static_cast<unsigned>(args->getUint("tus", 4));
    parseSpecPolicy(args->getString("policy", "str"), &cfg.policy,
                    &cfg.nestLimit);

    CollectFlags flags;
    flags.recording = true;

    std::cout << "policy " << specPolicyName(cfg.policy, cfg.nestLimit)
              << ", " << cfg.numTUs << " thread units\n";

    TableWriter t({"bench", "instrs", "cycles", "TPC", "#spec",
                   "thr/spec", "hit%", "squash(nest)", "instr-verif"});
    for (const auto &name : opts.selected()) {
        WorkloadArtifacts a = runWorkload(name, opts, flags);
        ThreadSpecSimulator sim(a.recording, cfg);
        SpecStats s = sim.run();
        t.row();
        t.cell(name);
        t.cell(s.totalInstrs);
        t.cell(s.cycles);
        t.cell(s.tpc(), 2);
        t.cell(s.specEvents);
        t.cell(s.threadsPerSpec(), 2);
        t.cell(100.0 * s.hitRatio(), 2);
        t.cell(s.squashedByNestRule);
        t.cell(s.avgInstrToVerif(), 0);
    }
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
    return 0;
}
