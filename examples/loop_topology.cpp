/**
 * @file
 * Loop topology inspector: the per-loop view of a workload — the top
 * loops by dynamic instruction span with their address ranges, execution
 * and trip statistics, termination reasons and speculation suitability
 * (constant trip counts are what the STR predictor thrives on).
 *
 *   $ ./examples/loop_topology --benchmarks compress --top 12
 */

#include <iostream>
#include <memory>

#include "harness/runner.hh"
#include "loop/loop_detector.hh"
#include "loop/per_loop_stats.hh"
#include "tracegen/trace_engine.hh"
#include "util/table_writer.hh"

using namespace loopspec;

int
main(int argc, char **argv)
{
    std::unique_ptr<CliArgs> args;
    RunOptions opts = parseRunOptions(argc, argv, {"top"}, &args);
    size_t top = args->getUint("top", 10);

    for (const auto &name : opts.selected()) {
        Program prog = buildWorkload(name, opts.scale);
        EngineConfig ecfg;
        ecfg.maxInstrs = opts.maxInstrs;
        TraceEngine engine(prog, ecfg);
        LoopDetector det({opts.clsEntries});
        PerLoopStats stats;
        det.addListener(&stats);
        engine.addObserver(&det);
        engine.run();

        auto ranked = stats.bySpan();
        std::cout << name << ": " << ranked.size()
                  << " loops observed, " << stats.totalInstrs()
                  << " instructions\n";

        TableWriter t({"T", "B", "execs", "1-iter", "iters",
                       "iter/exec", "trip range", "span%", "depth",
                       "ends(close/exit/other)"});
        size_t shown = 0;
        for (const auto &r : ranked) {
            if (shown++ >= top)
                break;
            t.row();
            t.cell(strprintf("0x%x", r.loop));
            t.cell(strprintf("0x%x", r.branchAddr));
            t.cell(r.execs);
            t.cell(r.singleIterExecs);
            t.cell(r.iters);
            t.cell(r.itersPerExec(), 2);
            t.cell(r.constantTrip()
                       ? strprintf("const %u", r.minTrip)
                       : strprintf("%u..%u", r.minTrip, r.maxTrip));
            t.cell(100.0 * static_cast<double>(r.instrSpan) /
                       static_cast<double>(stats.totalInstrs()),
                   1);
            t.cell(static_cast<uint64_t>(r.maxDepth));
            t.cell(strprintf("%llu/%llu/%llu",
                             (unsigned long long)r.endsByClose,
                             (unsigned long long)r.endsByExit,
                             (unsigned long long)r.endsByOther));
        }
        if (opts.csv)
            t.printCsv(std::cout);
        else
            t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}
